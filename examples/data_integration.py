"""Containment of incomplete specifications: a data-integration check.

Two teams publish incomplete descriptions of the same product catalog:

* the *warehouse* feed knows every SKU but not every category;
* the *storefront* spec constrains what the catalog may look like
  (categories come from an enumerated palette, two flagship SKUs must not
  land in the same category).

"Is every database the warehouse feed allows acceptable to the storefront
spec?" is exactly the paper's containment problem ``rep(T0) <= rep(T)``,
and because the feed is a g-table and the spec an e-table the library
decides it with the freeze/homomorphism technique of Theorem 4.1 instead of
enumerating worlds.

Run:  python examples/data_integration.py

Expected output: the warehouse feed and both storefront specs rendered
as tables, the containment verdict for each spec (spec A accepts the
feed, spec B rejects it with a counterexample world), and sample worlds
of the feed.  Exit status 0.
"""

from repro import TableDatabase, contains, enumerate_worlds
from repro.core.conditions import Conjunction, Eq, Neq
from repro.core.tables import CTable
from repro.core.terms import Variable


def main() -> None:
    c1, c2 = Variable("c1"), Variable("c2")
    # Warehouse feed: categories of two SKUs unknown, but recorded equal
    # (both came from the same supplier pallet).
    warehouse = TableDatabase.single(
        CTable(
            "catalog",
            2,
            [
                ("sku-100", "audio"),
                ("sku-200", c1),
                ("sku-300", c2),
            ],
            Conjunction([Eq(c1, c2)]),
        )
    )

    # Storefront spec: three slots; the first is pinned to audio, the other
    # two are free but must agree (a merchandising rule).
    d1, d2 = Variable("d1"), Variable("d2")
    storefront_ok = TableDatabase.single(
        CTable(
            "catalog",
            2,
            [
                ("sku-100", "audio"),
                ("sku-200", d1),
                ("sku-300", d1),
            ],
        )
    )

    # A stricter spec: the two free slots must *differ*.
    e1, e2 = Variable("e1"), Variable("e2")
    storefront_strict = TableDatabase.single(
        CTable(
            "catalog",
            2,
            [
                ("sku-100", "audio"),
                ("sku-200", e1),
                ("sku-300", e2),
            ],
            Conjunction([Neq(e1, e2)]),
        )
    )

    print("Warehouse feed (g-table):")
    print(warehouse["catalog"])
    print()
    print("Storefront spec A (equal categories, an e-table):")
    print(storefront_ok["catalog"])
    print()
    print("Storefront spec B (distinct categories, an i-table):")
    print(storefront_strict["catalog"])
    print()

    ok = contains(warehouse, storefront_ok)
    print(f"feed within spec A (freeze + search, Thm 4.1(2)): {ok}")
    strict = contains(warehouse, storefront_strict)
    print(f"feed within spec B (enumeration, Prop 2.1(1)):    {strict}")
    print()
    print("Spec A accepts the feed: the feed's equal-category worlds are")
    print("exactly what the merchandising rule wants.  Spec B rejects it:")
    print("the feed guarantees the two categories are equal, spec B demands")
    print("they differ — no feed world is acceptable.  One counterexample")
    print("world from the feed:")
    world = next(iter(enumerate_worlds(warehouse)))
    for fact in sorted(
        world["catalog"].facts, key=lambda f: [c.sort_key() for c in f]
    ):
        print("  ", tuple(c.value for c in fact))


if __name__ == "__main__":
    main()
