"""Modal query programs and maybe-tuples: an incident-triage workflow.

An on-call dashboard aggregates alerts from two flaky pipelines.  Some
alert rows are *maybe*-tuples (the collector may have duplicated or
dropped them -- Zaniolo's presence-unknown nulls); some carry nulls for
the affected host.  The triage question mixes modalities:

    "Which services are POSSIBLY affected but not CERTAINLY affected?"
    (those are the ones a human must look at)

which is exactly a modal program: two modal views collapse the possible
worlds, then an ordinary difference query runs on the collapsed, complete
relations -- the Section 6 "modal operators" extension.

Run:  python examples/modal_triage.py

Expected output: the encoded alerts table (guard variables marking
maybe-rows), the CERTAIN and POSSIBLE views, the services needing triage
(possibly-but-not-certainly affected), and the complexity regime the
modal analyser assigns each view.  Exit status 0.
"""

from repro import TableDatabase, UCQQuery, atom, cq
from repro.core.terms import Constant
from repro.extensions import maybe_table
from repro.modal import CERTAIN, POSSIBLE, ModalProgram, ModalView, modal_complexity
from repro.queries.firstorder import FOQuery


def main() -> None:
    # ------------------------------------------------------------------
    # Alerts(service, host): what the collector managed to save.
    #   - web on h1: definitely alerted.
    #   - api on an unknown host (null ?h).
    #   - batch on h9: the row itself may be a collector artefact (maybe).
    # ------------------------------------------------------------------
    alerts = maybe_table(
        "Alerts",
        2,
        sure=[("web", "h1"), ("api", "?h")],
        maybe=[("batch", "h9")],
    )
    db = TableDatabase.single(alerts.to_ctable())
    print("The encoded alerts table (guard variables mark maybe-rows):")
    print(db["Alerts"])
    print()

    # ------------------------------------------------------------------
    # The inner query: which services alerted at all?
    # ------------------------------------------------------------------
    affected = UCQQuery([cq(atom("Affected", "S"), atom("Alerts", "S", "H"))])

    # ------------------------------------------------------------------
    # The modal program: collapse through CERTAIN and POSSIBLE, then take
    # the difference on the now-complete relations.
    # ------------------------------------------------------------------
    program = ModalProgram(
        views=[
            ModalView("Sure", CERTAIN, affected),
            ModalView("Maybe", POSSIBLE, affected),
        ],
        outer=FOQuery.difference("Maybe", "Sure", 1, name="NeedsTriage"),
    )

    collapsed = program.collapse(db)
    print("CERTAIN view (alert in every world):")
    print("  ", sorted(c.value for (c,) in collapsed["Sure"]))
    print("POSSIBLE view (alert in some world):")
    print("  ", sorted(c.value for (c,) in collapsed["Maybe"]))

    triage = program.evaluate(db)
    (name,) = triage.names()
    print("POSSIBLY-but-not-CERTAINLY affected (human triage):")
    print("  ", sorted(c.value for (c,) in triage[name]))
    print()

    # ------------------------------------------------------------------
    # What did the modalities cost?  The maybe-encoding has local
    # conditions, so CERTAIN leaves the tractable g-table case while
    # POSSIBLE stays polynomial (Theorem 5.2(1)).
    # ------------------------------------------------------------------
    print("Evaluation regimes per view:")
    for view, regime in modal_complexity(program, db).items():
        print(f"  {view}: {regime}")


if __name__ == "__main__":
    main()
