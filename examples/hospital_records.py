"""Querying an incomplete hospital database: possible vs certain answers.

The scenario the paper's introduction motivates: a relational database with
*null values* — values present but unknown — queried for facts that are
*certainly* true (in every possible world) or merely *possibly* true
(in some world).

The data: patient admissions where some ward assignments are unknown, and a
staffing table where one shift is unresolved; a global condition records
what the administration does know (Dr. Shaw's ward is not pediatrics; the
two unknown wards differ).

Run:  python examples/hospital_records.py

Expected output: the rendered admissions/staffing g-tables, the
certain answers and possible answers of a "patient meets doctor" join
query, and a short explanation of why each borderline pair is
possible/impossible/certain.  Exit status 0.
"""

from repro import (
    Instance,
    TableDatabase,
    UCQQuery,
    atom,
    cq,
    g_table,
    is_certain,
    is_possible,
)
from repro.core.conditions import Conjunction, Neq
from repro.core.terms import Variable


def build_database() -> TableDatabase:
    # admissions(patient, ward): two ward assignments unknown.
    w1, w2 = Variable("w1"), Variable("w2")
    admissions = g_table(
        "admissions",
        2,
        [
            ("ibsen", "cardiology"),
            ("strind", w1),
            ("lagerlof", w2),
            ("hamsun", "pediatrics"),
        ],
    )
    # staff(doctor, ward): Dr. Shaw's ward is the *same* unknown w1 —
    # the admission clerk filed Strind under whatever ward Shaw runs.
    staff = g_table(
        "staff",
        2,
        [
            ("shaw", w1),
            ("okafor", "pediatrics"),
            ("ruiz", "cardiology"),
        ],
    )
    known = Conjunction(
        [
            Neq(w1, "pediatrics"),  # Shaw does not run pediatrics
            Neq(w1, w2),            # Strind and Lagerlof are in different wards
        ]
    )
    return TableDatabase([admissions, staff], extra_condition=known)


def main() -> None:
    db = build_database()
    print("Incomplete hospital database (g-tables + global condition):")
    for table in db.tables():
        print(f"-- {table.name} --")
        print(table)
    print(f"| {db.extra_condition()} |")
    print()

    # Q1: which (patient, doctor) pairs share a ward?
    same_ward = UCQQuery(
        [
            cq(
                atom("pairs", "P", "D"),
                atom("admissions", "P", "W"),
                atom("staff", "D", "W"),
            )
        ],
        name="same_ward",
    )

    checks = [
        ("ibsen with ruiz", Instance({"pairs": [("ibsen", "ruiz")]})),
        ("strind with shaw", Instance({"pairs": [("strind", "shaw")]})),
        ("strind with okafor", Instance({"pairs": [("strind", "okafor")]})),
        ("lagerlof with shaw", Instance({"pairs": [("lagerlof", "shaw")]})),
        ("hamsun with okafor", Instance({"pairs": [("hamsun", "okafor")]})),
    ]
    print("query: pairs(P, D) :- admissions(P, W), staff(D, W)")
    print(f"{'answer':24s}  {'possible':8s}  {'certain':7s}")
    for label, fact in checks:
        possible = is_possible(fact, db, same_ward)
        certain = is_certain(fact, db, same_ward)
        print(f"{label:24s}  {str(possible):8s}  {str(certain):7s}")
    print()
    print("Notes:")
    print(" * strind/shaw is certain: the clerk used Shaw's ward for Strind")
    print("   (the same null w1), so they match in every world.")
    print(" * strind/okafor is impossible: w1 != pediatrics is known.")
    print(" * lagerlof/shaw is impossible: w1 != w2 is known.")
    print(" * ibsen/ruiz is certain: both values are complete.")


if __name__ == "__main__":
    main()
