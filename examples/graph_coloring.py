"""The hardness constructions as a playground: 3-coloring via tables.

The paper's lower bounds are reductions from NP-/coNP-/Pi2p-complete
problems to table problems.  This example runs the 3-colorability
reductions of Theorems 3.1(2,3) and 3.2(4) on a family of graphs and shows
the three table encodings agreeing with a direct backtracking solver —
the library's reductions are executable, not just proofs on paper.

Run:  python examples/graph_coloring.py

Expected output: a verdict table (one row per graph, the backtracking
solver agreeing with the e-table MEMB, i-table MEMB and view UNIQ
encodings — ``K4`` is the non-colorable row), followed by one rendered
encoding table.  Exit status 0.
"""

from repro.harness import render_table
from repro.reductions import (
    decide_colorable_via_etable,
    decide_colorable_via_itable,
    decide_noncolorable_via_view,
    etable_membership,
    itable_membership,
)
from repro.solvers import (
    complete_graph,
    cycle_graph,
    example_graph_fig4a,
    find_coloring,
    is_colorable,
)


def main() -> None:
    graphs = [
        ("Fig 4(a) example", example_graph_fig4a()),
        ("triangle K3", complete_graph(3)),
        ("K4 (not 3-colorable)", complete_graph(4)),
        ("5-cycle", cycle_graph(5)),
        ("6-cycle", cycle_graph(6)),
    ]

    rows = []
    for label, graph in graphs:
        truth = is_colorable(graph, 3)
        via_e = decide_colorable_via_etable(graph)
        via_i = decide_colorable_via_itable(graph)
        via_view = not decide_noncolorable_via_view(graph)
        rows.append([label, truth, via_e, via_i, via_view])
    print(
        render_table(
            ["graph", "solver", "e-table MEMB", "i-table MEMB", "view UNIQ"],
            rows,
            title="3-colorability through three table problems",
        )
    )
    print()

    # Show one encoding in full.
    graph = example_graph_fig4a()
    print("The i-table encoding of the Fig 4(a) graph (Theorem 3.1(3)):")
    reduction = itable_membership(graph)
    print(reduction.db["T"])
    print("candidate instance: {1, 2, 3}")
    print(f"G 3-colorable iff member: {reduction.decide()}")
    print()
    coloring = find_coloring(graph, 3)
    print(f"a concrete 3-coloring from the solver: {coloring}")
    print()
    print("And the e-table encoding (Theorem 3.1(2)):")
    print(etable_membership(graph).db["T"])


if __name__ == "__main__":
    main()
