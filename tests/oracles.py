"""Reference (oracle) implementations of the paper's decision problems.

The oracle functions decide each problem straight from the enumeration
semantics of :mod:`repro.core.worlds`; the efficient algorithms are tested
against them on small inputs.  They live in a proper module (rather than
``conftest.py``) so that test modules can import them by name without
colliding with the benchmark suite's own ``conftest``.
"""

from __future__ import annotations

from repro.core.tables import TableDatabase
from repro.core.worlds import iter_worlds
from repro.relational.instance import Instance

__all__ = [
    "oracle_member",
    "oracle_unique",
    "oracle_contains",
    "oracle_possible",
    "oracle_certain",
]


def oracle_member(instance: Instance, db: TableDatabase, query=None) -> bool:
    """MEMB by world enumeration."""
    return any(
        world == instance
        for world in iter_worlds(db, query, extra_constants=instance.constants())
    )


def oracle_unique(instance: Instance, db: TableDatabase, query=None) -> bool:
    """UNIQ by world enumeration."""
    worlds = set(iter_worlds(db, query, extra_constants=instance.constants()))
    return worlds == {instance}


def oracle_contains(db0, db, query0=None, query=None) -> bool:
    """CONT by nested world enumeration."""
    extra = set(db.constants()) | set(db0.constants())
    if query is not None:
        extra |= query.constants()
    if query0 is not None:
        extra |= query0.constants()
    right = set(iter_worlds(db, query, extra_constants=extra))
    return all(
        world in right for world in iter_worlds(db0, query0, extra_constants=extra)
    )


def oracle_possible(facts: Instance, db: TableDatabase, query=None) -> bool:
    """POSS by world enumeration."""
    for world in iter_worlds(db, query, extra_constants=facts.constants()):
        if _facts_in(facts, world):
            return True
    return False


def oracle_certain(facts: Instance, db: TableDatabase, query=None) -> bool:
    """CERT by world enumeration."""
    return all(
        _facts_in(facts, world)
        for world in iter_worlds(db, query, extra_constants=facts.constants())
    )


def _facts_in(facts: Instance, world: Instance) -> bool:
    for name in facts.names():
        wanted = facts[name].facts
        if not wanted:
            continue
        if name not in world or not wanted <= world[name].facts:
            return False
    return True
