"""Unit tests for the query languages: UCQ, first order, Datalog."""

import pytest

from repro.core.conditions import Eq, Neq
from repro.core.terms import Constant, Variable
from repro.queries import (
    And,
    Compare,
    DatalogQuery,
    Exists,
    FOQuery,
    Forall,
    IDENTITY,
    Implies,
    Not,
    Or,
    Rel,
    Rule,
    UCQQuery,
    atom,
    cq,
    naive_fixpoint,
    seminaive_fixpoint,
)
from repro.relational import Instance, Relation


def _graph_instance():
    return Instance({"E": [(1, 2), (2, 3), (3, 4)], "V": [(1,), (2,), (3,), (4,)]})


class TestIdentity:
    def test_identity_is_identity(self):
        inst = _graph_instance()
        assert IDENTITY(inst) == inst

    def test_identity_flags(self):
        assert IDENTITY.is_positive_existential()
        assert IDENTITY.constants() == set()


class TestRules:
    def test_unsafe_rule_rejected(self):
        with pytest.raises(ValueError):
            cq(atom("Q", "X", "Y"), atom("E", "X", "Z"))

    def test_unsafe_condition_rejected(self):
        with pytest.raises(ValueError):
            cq(atom("Q", "X"), atom("V", "X"), where=[Neq(Variable("W"), 1)])

    def test_constants_allowed_in_head(self):
        rule = cq(atom("Q", 0, "X"), atom("V", "X"))
        assert Constant(0) in rule.constants()

    def test_conjunctive_join(self):
        # Two-step paths.
        q = UCQQuery([cq(atom("P", "X", "Z"), atom("E", "X", "Y"), atom("E", "Y", "Z"))])
        out = q(_graph_instance())
        assert out["P"] == Relation(2, [(1, 3), (2, 4)])

    def test_union_of_rules(self):
        q = UCQQuery(
            [
                cq(atom("Q", "X"), atom("E", "X", "Y")),
                cq(atom("Q", "Y"), atom("E", "X", "Y")),
            ]
        )
        assert q(_graph_instance())["Q"] == Relation(1, [(1,), (2,), (3,), (4,)])

    def test_constant_in_body_filters(self):
        q = UCQQuery([cq(atom("Q", "Y"), atom("E", 1, "Y"))])
        assert q(_graph_instance())["Q"] == Relation(1, [(2,)])

    def test_repeated_variable_join_within_atom(self):
        inst = Instance({"E": [(1, 1), (1, 2)]})
        q = UCQQuery([cq(atom("Q", "X"), atom("E", "X", "X"))])
        assert q(inst)["Q"] == Relation(1, [(1,)])

    def test_inequality_side_condition(self):
        q = UCQQuery(
            [
                cq(
                    atom("Q", "X", "Y"),
                    atom("E", "X", "Y"),
                    where=[Neq(Variable("X"), 2)],
                )
            ]
        )
        assert q(_graph_instance())["Q"] == Relation(2, [(1, 2), (3, 4)])
        assert not q.is_positive_existential()

    def test_equality_side_condition(self):
        q = UCQQuery(
            [
                cq(
                    atom("Q", "X"),
                    atom("E", "X", "Y"),
                    where=[Eq(Variable("Y"), 2)],
                )
            ]
        )
        assert q(_graph_instance())["Q"] == Relation(1, [(1,)])
        assert q.is_positive_existential()

    def test_multi_output_query(self):
        q = UCQQuery(
            [
                cq(atom("A", "X"), atom("V", "X")),
                cq(atom("B", "X", "Y"), atom("E", "X", "Y")),
            ]
        )
        out = q(_graph_instance())
        assert set(out.names()) == {"A", "B"}

    def test_inconsistent_head_arity_rejected(self):
        with pytest.raises(ValueError):
            UCQQuery(
                [
                    cq(atom("Q", "X"), atom("V", "X")),
                    cq(atom("Q", "X", "X"), atom("V", "X")),
                ]
            )

    def test_missing_relation_matches_nothing(self):
        q = UCQQuery([cq(atom("Q", "X"), atom("Nope", "X"))])
        out = q(_graph_instance())
        assert len(out["Q"]) == 0

    def test_rename_apart(self):
        rule = cq(atom("Q", "X"), atom("V", "X"))
        renamed = rule.rename_apart({"X"})
        assert renamed.head.terms[0] != Variable("X")
        assert renamed.body[0].terms == renamed.head.terms


class TestFirstOrder:
    def test_existential(self):
        q = FOQuery({"Q": (("X",), Exists(("Y",), Rel("E", "X", "Y")))})
        assert q(_graph_instance())["Q"] == Relation(1, [(1,), (2,), (3,)])

    def test_negation(self):
        # Nodes with no outgoing edge.
        q = FOQuery(
            {
                "Q": (
                    ("X",),
                    And([Rel("V", "X"), Not(Exists(("Y",), Rel("E", "X", "Y")))]),
                )
            }
        )
        assert q(_graph_instance())["Q"] == Relation(1, [(4,)])

    def test_forall(self):
        # Nodes all of whose successors are > 2 ... encoded via Compare.
        formula = And(
            [
                Rel("V", "X"),
                Forall(
                    ("Y",),
                    Implies(
                        Rel("E", "X", "Y"),
                        Not(Or([Compare(Eq(Variable("Y"), 1)), Compare(Eq(Variable("Y"), 2))])),
                    ),
                ),
            ]
        )
        q = FOQuery({"Q": (("X",), formula)})
        # 1 -> 2 violates; others fine (2->3, 3->4, 4 has no successor).
        assert q(_graph_instance())["Q"] == Relation(1, [(2,), (3,), (4,)])

    def test_constant_head(self):
        q = FOQuery({"Q": ((1,), Exists(("X", "Y"), Rel("E", "X", "Y")))})
        assert q(_graph_instance())["Q"] == Relation(1, [(1,)])
        empty = Instance({"E": Relation(2), "V": [(1,)]})
        assert len(q(empty)["Q"]) == 0

    def test_head_var_must_be_free(self):
        with pytest.raises(ValueError):
            FOQuery({"Q": (("Z",), Rel("E", "X", "Y"))})

    def test_nnf_involution_on_compare(self):
        f = Not(Not(Compare(Eq(Variable("X"), 1))))
        assert isinstance(f.nnf(), Compare)

    def test_forall_exists_interchange(self):
        inst = Instance({"E": [(1, 2), (2, 1)]})
        # forall X exists Y: E(X, Y) over active domain {1,2}: true.
        q = FOQuery(
            {"Q": ((1,), Forall(("X",), Exists(("Y",), Or([Rel("E", "X", "Y"), Not(Exists(("Z",), Rel("E", "X", "Z")))]))))}
        )
        assert len(q(inst)["Q"]) == 1

    def test_compare_only_query_falls_back_to_domain(self):
        inst = Instance({"V": [(1,), (2,)]})
        q = FOQuery(
            {"Q": ((1,), Exists(("X",), And([Compare(Neq(Variable("X"), 1))])))}
        )
        # Some domain element differs from 1.
        assert len(q(inst)["Q"]) == 1


class TestDatalog:
    def _tc_program(self):
        return [
            cq(atom("T", "X", "Y"), atom("E", "X", "Y")),
            cq(atom("T", "X", "Z"), atom("T", "X", "Y"), atom("E", "Y", "Z")),
        ]

    def test_transitive_closure(self):
        q = DatalogQuery(self._tc_program(), outputs=["T"])
        out = q(_graph_instance())
        assert (1, 4) in out["T"]
        assert (4, 1) not in out["T"]
        assert len(out["T"]) == 6

    def test_naive_equals_seminaive(self):
        inst = _graph_instance()
        naive = naive_fixpoint(self._tc_program(), inst)
        semi = seminaive_fixpoint(self._tc_program(), inst)
        assert naive["T"] == semi["T"]

    def test_cycle_terminates(self):
        inst = Instance({"E": [(1, 2), (2, 1)]})
        q = DatalogQuery(self._tc_program(), outputs=["T"])
        assert len(q(inst)["T"]) == 4

    def test_pure_datalog_rejects_inequality(self):
        rule = cq(
            atom("Q", "X"), atom("E", "X", "Y"), where=[Neq(Variable("X"), 1)]
        )
        with pytest.raises(ValueError):
            DatalogQuery([rule])

    def test_equality_condition_allowed(self):
        rule = cq(
            atom("Q", "X"), atom("E", "X", "Y"), where=[Eq(Variable("Y"), 2)]
        )
        q = DatalogQuery([rule])
        assert q(_graph_instance())["Q"] == Relation(1, [(1,)])

    def test_outputs_must_be_idb(self):
        with pytest.raises(ValueError):
            DatalogQuery(self._tc_program(), outputs=["E"])

    def test_not_positive_existential(self):
        q = DatalogQuery(self._tc_program())
        assert not q.is_positive_existential()

    def test_engine_choice(self):
        naive_q = DatalogQuery(self._tc_program(), outputs=["T"], engine="naive")
        semi_q = DatalogQuery(self._tc_program(), outputs=["T"], engine="seminaive")
        inst = _graph_instance()
        assert naive_q(inst) == semi_q(inst)


class TestFOQueryDifference:
    """The FOQuery.difference convenience constructor."""

    def test_basic_difference(self):
        q = FOQuery.difference("A", "B", 1)
        inst = Instance({"A": [(1,), (2,), (3,)], "B": [(2,)]})
        (name,) = q(inst).names()
        assert q(inst)[name] == Relation(1, [(1,), (3,)])

    def test_arity_two(self):
        q = FOQuery.difference("A", "B", 2)
        inst = Instance({"A": [(1, 2), (3, 4)], "B": [(1, 2)]})
        (name,) = q(inst).names()
        assert q(inst)[name] == Relation(2, [(3, 4)])

    def test_default_output_name(self):
        q = FOQuery.difference("A", "B", 1)
        assert "A_minus_B" in q.outputs

    def test_custom_name(self):
        q = FOQuery.difference("A", "B", 1, name="D")
        assert list(q.outputs) == ["D"]

    def test_empty_right_is_identity(self):
        q = FOQuery.difference("A", "B", 1)
        inst = Instance({"A": [(1,)], "B": Relation(1)})
        (name,) = q(inst).names()
        assert q(inst)[name] == Relation(1, [(1,)])

    def test_not_positive_existential(self):
        assert not FOQuery.difference("A", "B", 1).is_positive_existential()
