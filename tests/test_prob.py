"""Tests for repro.prob: probabilistic c-tables (pc-tables)."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Instance,
    TableDatabase,
    UCQQuery,
    atom,
    c_table,
    codd_table,
    cq,
    e_table,
    g_table,
    is_certain,
    is_possible,
)
from repro.core.conditions import BoolCondition, Conjunction, Eq, Neq, parse_conjunction
from repro.core.terms import Constant, Variable
from repro.prob import (
    Distribution,
    PCDatabase,
    bernoulli,
    condition_probability,
    event_condition,
    uniform,
)

APPROX = dict(rel=1e-9, abs=1e-12)


class TestDistribution:
    def test_probability_lookup(self):
        d = Distribution({1: 0.5, 2: 0.5})
        assert d.probability(1) == 0.5
        assert d.probability(3) == 0.0

    def test_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum"):
            Distribution({1: 0.5, 2: 0.4})

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            Distribution({1: -0.5, 2: 1.5})

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            Distribution({1: float("nan"), 2: 1.0})

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            Distribution({})

    def test_zero_weights_dropped_from_support(self):
        d = Distribution({1: 1.0, 2: 0.0})
        assert d.support() == (Constant(1),)

    def test_uniform(self):
        d = uniform([1, 2, 3, 4])
        assert d.probability(3) == pytest.approx(0.25)
        assert len(d.support()) == 4

    def test_uniform_empty_rejected(self):
        with pytest.raises(ValueError):
            uniform([])

    def test_bernoulli(self):
        d = bernoulli(0.3)
        assert d.probability(1) == pytest.approx(0.3)
        assert d.probability(0) == pytest.approx(0.7)

    def test_bernoulli_degenerate(self):
        assert bernoulli(1.0).support() == (Constant(1),)
        assert bernoulli(0.0).support() == (Constant(0),)

    def test_bernoulli_out_of_range(self):
        with pytest.raises(ValueError):
            bernoulli(1.5)

    def test_equality_and_hash(self):
        assert uniform([1, 2]) == Distribution({1: 0.5, 2: 0.5})
        assert hash(uniform([1, 2])) == hash(Distribution({1: 0.5, 2: 0.5}))


class TestConditionProbability:
    def test_single_equality(self):
        cond = Conjunction([Eq(Variable("x"), Constant(1))])
        dists = {Variable("x"): uniform([1, 2, 3, 4])}
        assert condition_probability(cond, dists) == pytest.approx(0.25)

    def test_inequality(self):
        cond = Conjunction([Neq(Variable("x"), Constant(1))])
        dists = {Variable("x"): uniform([1, 2, 3, 4])}
        assert condition_probability(cond, dists) == pytest.approx(0.75)

    def test_two_variable_equality(self):
        cond = Conjunction([Eq(Variable("x"), Variable("y"))])
        dists = {
            Variable("x"): uniform([1, 2]),
            Variable("y"): uniform([1, 2]),
        }
        assert condition_probability(cond, dists) == pytest.approx(0.5)

    def test_independent_components_factor(self):
        # (x = 1) & (y = 2) over disjoint variables: product law.
        cond = parse_conjunction("x = 1, y = 2")
        dists = {
            Variable("x"): uniform([1, 2]),
            Variable("y"): uniform([1, 2, 3, 4]),
        }
        assert condition_probability(cond, dists) == pytest.approx(0.5 * 0.25)

    def test_constant_only_conditions(self):
        true_cond = BoolCondition.from_conjunction(Conjunction())
        assert condition_probability(true_cond, {}) == 1.0
        false_cond = BoolCondition.from_conjunction(
            Conjunction([Eq(Constant(0), Constant(1))])
        )
        assert condition_probability(false_cond, {}) == 0.0

    def test_missing_distribution_raises(self):
        cond = Conjunction([Eq(Variable("x"), Constant(1))])
        with pytest.raises(KeyError, match="x"):
            condition_probability(cond, {})

    def test_matches_bruteforce_on_random_conditions(self):
        rng = random.Random(3)
        variables = [Variable(n) for n in "xyz"]
        dists = {v: uniform([0, 1, 2]) for v in variables}
        for _ in range(30):
            atoms = []
            for _ in range(rng.randint(1, 4)):
                cls = rng.choice([Eq, Neq])
                left = rng.choice(variables)
                right = rng.choice(variables + [Constant(rng.randint(0, 2))])
                atoms.append(cls(left, right))
            cond = Conjunction(atoms)
            # brute force over the full joint
            import itertools

            total = 0.0
            for vals in itertools.product([0, 1, 2], repeat=3):
                env = dict(zip(variables, map(Constant, vals)))
                if cond.satisfied_by(lambda t: env.get(t, t)):
                    total += (1 / 3) ** 3
            assert condition_probability(cond, dists) == pytest.approx(total)


class TestEventCondition:
    def test_ground_row_is_sure(self):
        table = codd_table("R", 1, [(0,)])
        cond = event_condition(table, (0,))
        assert condition_probability(cond, {}) == 1.0

    def test_absent_fact_is_impossible(self):
        table = codd_table("R", 1, [(0,)])
        cond = event_condition(table, (1,))
        assert condition_probability(cond, {}) == 0.0

    def test_null_row_lineage(self):
        table = codd_table("R", 1, [("?x",)])
        cond = event_condition(table, (1,))
        dists = {Variable("x"): uniform([0, 1])}
        assert condition_probability(cond, dists) == pytest.approx(0.5)

    def test_arity_mismatch(self):
        table = codd_table("R", 2, [(0, 1)])
        with pytest.raises(ValueError, match="arity"):
            event_condition(table, (0,))

    def test_multiple_rows_disjunction(self):
        table = e_table("R", 1, [("?x",), ("?y",)])
        cond = event_condition(table, (1,))
        dists = {
            Variable("x"): uniform([0, 1]),
            Variable("y"): uniform([0, 1]),
        }
        # P(x = 1 or y = 1) = 1 - 1/4
        assert condition_probability(cond, dists) == pytest.approx(0.75)


def dice_db() -> PCDatabase:
    """Two independent dice; the table records both rolls."""
    db = TableDatabase.single(codd_table("Roll", 2, [("?d1", "?d2")]))
    return PCDatabase(
        db, {"d1": uniform(range(1, 7)), "d2": uniform(range(1, 7))}
    )


class TestPCDatabase:
    def test_requires_full_coverage(self):
        db = TableDatabase.single(codd_table("R", 1, [("?x",)]))
        with pytest.raises(ValueError, match="x"):
            PCDatabase(db, {})

    def test_rejects_non_distribution(self):
        db = TableDatabase.single(codd_table("R", 1, [("?x",)]))
        with pytest.raises(TypeError):
            PCDatabase(db, {"x": 0.5})

    def test_zero_mass_global_condition_rejected(self):
        db = TableDatabase.single(
            g_table("R", 1, [("?x",)], "x != 0, x != 1")
        )
        with pytest.raises(ValueError, match="probability 0"):
            PCDatabase(db, {"x": uniform([0, 1])})

    def test_world_distribution_sums_to_one(self):
        pc = dice_db()
        dist = pc.world_distribution()
        assert len(dist) == 36
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_world_probability(self):
        pc = dice_db()
        world = Instance({"Roll": [(3, 4)]})
        assert pc.world_probability(world) == pytest.approx(1 / 36)

    def test_fact_probability_simple(self):
        pc = dice_db()
        assert pc.fact_probability("Roll", (3, 4)) == pytest.approx(1 / 36)

    def test_fact_probability_matches_world_distribution(self):
        pc = dice_db()
        dist = pc.world_distribution()
        fact = (Constant(2), Constant(5))
        truth = sum(p for w, p in dist.items() if fact in w["Roll"].facts)
        assert pc.fact_probability("Roll", (2, 5)) == pytest.approx(truth)

    def test_conditioning_on_global_condition(self):
        # x uniform on 1..6, conditioned on x != 6: each surviving value has mass 1/5.
        db = TableDatabase.single(g_table("R", 1, [("?x",)], "x != 6"))
        pc = PCDatabase(db, {"x": uniform(range(1, 7))})
        assert pc.global_condition_mass() == pytest.approx(5 / 6)
        assert pc.fact_probability("R", (3,)) == pytest.approx(1 / 5)
        assert pc.fact_probability("R", (6,)) == 0.0

    def test_local_condition_probability(self):
        # Fact present iff its local condition holds.
        table = c_table("R", 1, [((7,), "g = 1")])
        pc = PCDatabase(TableDatabase.single(table), {"g": bernoulli(0.3)})
        assert pc.fact_probability("R", (7,)) == pytest.approx(0.3)

    def test_query_probability_conjunction_of_facts(self):
        pc = dice_db()
        request = Instance({"Roll": [(3, 4)]})
        assert pc.query_probability(request) == pytest.approx(1 / 36)

    def test_query_probability_with_ucq(self):
        # Q(d) :- Roll(d, d): probability both dice agree on a given value.
        q = UCQQuery([cq(atom("Q", "X"), atom("Roll", "X", "X"))])
        pc = dice_db()
        request = Instance({"Q": [(6,)]})
        assert pc.query_probability(request, q) == pytest.approx(1 / 36)

    def test_query_probability_matches_enumeration(self):
        q = UCQQuery([cq(atom("Q", "X"), atom("Roll", "X", "Y"))])
        pc = dice_db()
        dist = pc.world_distribution()
        request = Instance({"Q": [(2,)]})
        truth = sum(p for w, p in dist.items() if (Constant(2),) in q(w)["Q"].facts)
        assert pc.query_probability(request, q) == pytest.approx(truth)

    def test_unknown_relation_raises(self):
        pc = dice_db()
        with pytest.raises(KeyError):
            pc.fact_probability("Nope", (1, 2))

    def test_sample_world_respects_support(self):
        pc = dice_db()
        rng = random.Random(11)
        for _ in range(20):
            world = pc.sample_world(rng)
            ((a, b),) = world["Roll"].facts
            assert 1 <= a.value <= 6 and 1 <= b.value <= 6

    def test_sample_world_respects_global_condition(self):
        db = TableDatabase.single(g_table("R", 1, [("?x",)], "x != 1"))
        pc = PCDatabase(db, {"x": uniform([1, 2])})
        rng = random.Random(5)
        for _ in range(20):
            world = pc.sample_world(rng)
            assert (Constant(1),) not in world["R"].facts


class TestProbabilityQualitativeCoherence:
    """P > 0 iff possible; P = 1 iff certain -- the scale's endpoints."""

    def _pc(self):
        table = c_table(
            "R",
            1,
            [
                ((0,),),
                (("?x",), "x != 2"),
            ],
        )
        db = TableDatabase.single(table)
        return PCDatabase(db, {"x": uniform([1, 2, 3])}), db

    def test_positive_probability_iff_possible(self):
        pc, db = self._pc()
        for value in (0, 1, 2, 3):
            p = pc.fact_probability("R", (value,))
            possible = is_possible(Instance({"R": [(value,)]}), db)
            # The support is {1,2,3}: possibility over the support matches p>0.
            if value != 2:
                assert (p > 0) == possible
            else:
                # x = 2 is killed by the local condition either way.
                assert p == 0.0

    def test_probability_one_iff_certain(self):
        pc, db = self._pc()
        assert pc.fact_probability("R", (0,)) == pytest.approx(1.0)
        assert is_certain(Instance({"R": [(0,)]}), db)
        assert pc.fact_probability("R", (1,)) < 1.0
        assert not is_certain(Instance({"R": [(1,)]}), db)


class TestLineageProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 2), st.integers(0, 2)), min_size=1, max_size=4
        ),
        st.integers(0, 2),
        st.integers(0, 2),
    )
    def test_fact_probability_matches_world_distribution(self, rows, a, b):
        # Table mixing ground rows and one null row per column.
        table = e_table(
            "R", 2, [tuple(r) for r in rows] + [("?x", "?y")]
        )
        pc = PCDatabase(
            TableDatabase.single(table),
            {"x": uniform([0, 1, 2]), "y": uniform([0, 1, 2])},
        )
        fact = (Constant(a), Constant(b))
        dist = pc.world_distribution()
        truth = sum(p for w, p in dist.items() if fact in w["R"].facts)
        assert pc.fact_probability("R", (a, b)) == pytest.approx(truth)
