"""Tests for possible/certain answer sets and the modal operators."""

import pytest

from repro.core.answers import (
    Certainly,
    Possibly,
    certain_answers,
    certain_answers_enumerate,
    possible_answers,
    possible_answers_enumerate,
)
from repro.core.conditions import Conjunction, Eq, Neq
from repro.core.tables import CTable, TableDatabase, c_table, codd_table, g_table
from repro.core.terms import Constant, Variable
from repro.queries import UCQQuery, atom, cq
from repro.relational.instance import Instance, Relation
from repro.workloads import random_table

x, y = Variable("x"), Variable("y")


class TestIdentityAnswers:
    def test_ground_facts_certain(self):
        table = codd_table("T", 1, [(1,), (2,)])
        db = TableDatabase.single(table)
        assert certain_answers(db) == Instance({"T": [(1,), (2,)]})
        assert possible_answers(db) == Instance({"T": [(1,), (2,)]})

    def test_null_possible_over_active_domain(self):
        table = codd_table("T", 1, [(1,), ("?a",)])
        db = TableDatabase.single(table)
        possible = possible_answers(db)
        assert possible["T"] == Relation(1, [(1,)])
        certain = certain_answers(db)
        assert certain["T"] == Relation(1, [(1,)])

    def test_null_with_wider_domain(self):
        table = codd_table("T", 2, [(1, "?a"), (2, 3)])
        db = TableDatabase.single(table)
        possible = possible_answers(db)
        # a may be any active-domain constant: 1, 2, 3.
        assert possible["T"].facts == {
            tuple(map(Constant, f)) for f in [(1, 1), (1, 2), (1, 3), (2, 3)]
        }

    def test_inequality_prunes_possible(self):
        table = g_table("T", 1, [("?a",)], Conjunction([Neq(Variable("a"), 1)]))
        db = TableDatabase.single(table)
        possible = possible_answers(db)
        assert (1,) not in possible["T"]

    def test_pinned_null_certain(self):
        table = g_table("T", 1, [("?a",)], Conjunction([Eq(Variable("a"), 7)]))
        db = TableDatabase.single(table)
        assert certain_answers(db)["T"] == Relation(1, [(7,)])

    def test_case_split_certain(self):
        table = c_table("T", 1, [((1,), "u = 0"), ((1,), "u != 0")])
        db = TableDatabase.single(table)
        assert certain_answers(db)["T"] == Relation(1, [(1,)])

    def test_conditioned_fact_possible_not_certain(self):
        table = c_table("T", 1, [((1,), "u = 0")])
        db = TableDatabase.single(table)
        assert possible_answers(db)["T"] == Relation(1, [(1,)])
        assert certain_answers(db)["T"] == Relation(1, [])


class TestViewAnswers:
    def _db(self):
        return TableDatabase(
            [
                CTable("R", 2, [(1, x), (2, 3)]),
                CTable("S", 1, [(3,), (x,)]),
            ]
        )

    def _query(self):
        return UCQQuery(
            [cq(atom("Q", "A"), atom("R", "A", "B"), atom("S", "B"))]
        )

    def test_view_certain(self):
        # R(2,3) joins S(3): certain.  R(1,x) joins S(x): also certain!
        certain = certain_answers(self._db(), self._query())
        assert certain["Q"].facts == {(Constant(1),), (Constant(2),)}

    def test_view_possible(self):
        possible = possible_answers(self._db(), self._query())
        assert possible["Q"].facts == {(Constant(1),), (Constant(2),)}

    def test_agrees_with_enumeration(self, rng):
        query = UCQQuery([cq(atom("Q", "B"), atom("R", "A", "B"))])
        for kind in ("codd", "e", "c"):
            for _ in range(6):
                table = random_table(rng, kind, name="R", rows=2, num_constants=2)
                db = TableDatabase.single(table)
                # Enumeration restricted to active-domain facts for a fair
                # comparison (fresh-constant worlds add non-adom facts).
                adom = db.constants() | query.constants()
                enum_possible = possible_answers_enumerate(db, query)
                enum_adom = {
                    f
                    for f in enum_possible["Q"].facts
                    if all(c in adom for c in f)
                }
                assert possible_answers(db, query)["Q"].facts == enum_adom
                assert (
                    certain_answers(db, query)["Q"].facts
                    == certain_answers_enumerate(db, query)["Q"].facts
                )

    def test_unsupported_query_class_raises(self):
        from repro.queries import DatalogQuery

        q = DatalogQuery([cq(atom("P", "A"), atom("R", "A", "B"))])
        with pytest.raises(ValueError):
            possible_answers(self._db(), q)


class TestModalOperators:
    def test_possibly_certainly_answers(self):
        db = TableDatabase.single(c_table("R", 2, [((1, 5), "u = 0"), ((2, 6),)]))
        q = UCQQuery([cq(atom("Q", "B"), atom("R", "A", "B"))])
        possibly = Possibly(q)
        certainly = Certainly(q)
        assert possibly.answers(db)["Q"].facts == {(Constant(5),), (Constant(6),)}
        assert certainly.answers(db)["Q"].facts == {(Constant(6),)}

    def test_modal_on_complete_instance_is_plain_query(self):
        q = UCQQuery([cq(atom("Q", "B"), atom("R", "A", "B"))])
        inst = Instance({"R": [(1, 5)]})
        assert Possibly(q)(inst) == q(inst) == Certainly(q)(inst)

    def test_certain_subset_of_possible(self, rng):
        q = UCQQuery([cq(atom("Q", "B"), atom("R", "A", "B"))])
        for _ in range(6):
            table = random_table(rng, "c", name="R", rows=3, num_constants=3)
            db = TableDatabase.single(table)
            certain = certain_answers(db, q)
            possible = possible_answers(db, q)
            assert certain["Q"].facts <= possible["Q"].facts
