"""Shared fixtures for the test suite.

The reference (oracle) implementations used by the differential tests live
in :mod:`oracles` (``tests/oracles.py``); only pytest fixtures belong here.
"""

from __future__ import annotations

import random

import pytest


@pytest.fixture
def rng():
    """A deterministic random generator, fresh per test."""
    return random.Random(0xC0DD)
