"""Tests for the reporting/figure/grid harness utilities."""

import math

import pytest

from repro.harness.reporting import (
    classify_growth,
    growth_ratio,
    loglog_slope,
    render_table,
    sweep,
    time_call,
)


class TestRenderTable:
    def test_columns_aligned(self):
        out = render_table(["a", "bb"], [["xxx", 1], ["y", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("a    bb")
        assert all(len(line) >= len("a    bb") - 2 for line in lines)

    def test_title_first(self):
        out = render_table(["h"], [["v"]], title="My title")
        assert out.splitlines()[0] == "My title"

    def test_header_rule_present(self):
        out = render_table(["col"], [["value"]])
        assert "-----" in out.splitlines()[1]

    def test_non_string_cells(self):
        out = render_table(["n", "t"], [[10, 0.25]])
        assert "10" in out and "0.25" in out


class TestTiming:
    def test_time_call_positive(self):
        assert time_call(lambda: sum(range(100))) >= 0.0

    def test_sweep_shape(self):
        series = sweep([1, 2, 4], lambda n: (lambda: sum(range(n))), repeat=1)
        assert [n for n, _ in series] == [1, 2, 4]
        assert all(t >= 0 for _, t in series)


class TestGrowthDiagnostics:
    def test_loglog_slope_of_quadratic(self):
        series = [(n, 0.001 * n * n) for n in (10, 20, 40, 80)]
        assert loglog_slope(series) == pytest.approx(2.0, abs=0.01)

    def test_loglog_slope_of_linear(self):
        series = [(n, 0.5 * n) for n in (10, 20, 40)]
        assert loglog_slope(series) == pytest.approx(1.0, abs=0.01)

    def test_loglog_slope_needs_two_points(self):
        with pytest.raises(ValueError):
            loglog_slope([(10, 1.0)])

    def test_growth_ratio_of_exponential(self):
        series = [(n, 0.001 * 2.0**n) for n in (4, 5, 6, 7)]
        assert growth_ratio(series) == pytest.approx(2.0, rel=0.01)

    def test_growth_ratio_spread_increments(self):
        # Doubling per unit measured over a 2-unit step: ratio per unit
        # is still 2.
        series = [(4, 0.016), (6, 0.064)]
        assert growth_ratio(series) == pytest.approx(2.0, rel=0.01)

    def test_classify_exponential(self):
        series = [(n, 0.001 * 3.0**n) for n in (3, 4, 5, 6)]
        assert classify_growth(series) == "exponential-like"

    def test_classify_polynomial(self):
        series = [(n, 0.001 * n**2) for n in (10, 20, 40)]
        assert classify_growth(series) == "polynomial-like"

    def test_classify_inconclusive(self):
        assert classify_growth([(1, 0.0)]) == "inconclusive"


class TestFiguresAndGrid:
    def test_all_figures_render(self):
        from repro.harness.figures import all_figures

        figures = all_figures()
        assert len(figures) >= 6  # fig1, fig3, fig4, fig6/7..., fig12
        for name, text in figures.items():
            assert isinstance(text, str) and text.strip(), name

    def test_fig2_grid_mentions_all_classes(self):
        from repro.harness.grid import render_fig2_grid

        grid = render_fig2_grid()
        for area in ("PTIME", "NP", "coNP", "Pi2p"):
            assert area in grid
