"""Tests for the text front-ends (rules, Datalog, table literals)."""

import pytest

from repro.core.conditions import Eq, Neq
from repro.core.terms import Constant, Variable
from repro.relational.parser import (
    ParseError,
    parse_datalog,
    parse_query,
    parse_rules,
    parse_table,
)
from repro.relational.instance import Instance, Relation


class TestRuleParsing:
    def test_simple_rule(self):
        rules = parse_rules("Q(X) :- R(X, Y).")
        assert len(rules) == 1
        rule = rules[0]
        assert rule.head.pred == "Q"
        assert rule.body[0].pred == "R"
        assert rule.head.terms == (Variable("X"),)

    def test_constants_lowercase_and_numbers(self):
        rules = parse_rules("Q(alice, 3) :- R(alice, 3).")
        head = rules[0].head
        assert head.terms == (Constant("alice"), Constant(3))

    def test_quoted_strings(self):
        rules = parse_rules("Q(X) :- R(X, 'New York').")
        assert Constant("New York") in rules[0].body[0].constants()

    def test_negative_numbers(self):
        rules = parse_rules("Q(X) :- R(X, -1).")
        assert Constant(-1) in rules[0].body[0].constants()

    def test_side_conditions(self):
        rules = parse_rules("Q(X) :- R(X, Y), X != 0, Y = 2.")
        rule = rules[0]
        assert Neq(Variable("X"), 0) in rule.conditions
        assert Eq(Variable("Y"), 2) in rule.conditions

    def test_facts_allowed(self):
        rules = parse_rules("Q(0).")
        assert rules[0].body == ()

    def test_multiple_rules(self):
        rules = parse_rules(
            """
            Q(X) :- R(X, Y).
            Q(Y) :- R(X, Y).  % comment
            """
        )
        assert len(rules) == 2

    def test_unsafe_rule_rejected(self):
        with pytest.raises(ValueError):
            parse_rules("Q(Z) :- R(X, Y).")

    def test_missing_dot(self):
        with pytest.raises(ParseError):
            parse_rules("Q(X) :- R(X, Y)")

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_rules("Q(X) :- @#!.")


class TestQueryParsing:
    def test_parsed_query_evaluates(self):
        q = parse_query("Q(X) :- E(X, Y). Q(Y) :- E(X, Y).")
        inst = Instance({"E": [(1, 2)]})
        assert q(inst)["Q"] == Relation(1, [(1,), (2,)])

    def test_recursion_rejected_for_ucq(self):
        with pytest.raises(ParseError):
            parse_query("T(X, Y) :- E(X, Y). T(X, Z) :- T(X, Y), E(Y, Z).")

    def test_datalog_accepts_recursion(self):
        q = parse_datalog(
            "T(X, Y) :- E(X, Y). T(X, Z) :- T(X, Y), E(Y, Z).", outputs=["T"]
        )
        inst = Instance({"E": [(1, 2), (2, 3)]})
        assert (1, 3) in q(inst)["T"]

    def test_datalog_rejects_inequality(self):
        with pytest.raises(ValueError):
            parse_datalog("T(X) :- E(X, Y), X != 0.")


class TestTableParsing:
    def test_basic_table(self):
        table = parse_table(
            "T",
            """
            0  1  ?x
            ?y ?z 1
            2  0  ?v
            """,
        )
        assert table.arity == 3
        assert len(table.rows) == 3
        assert table.classify() == "codd"

    def test_local_conditions(self):
        table = parse_table(
            "T",
            """
            0 1      : z = z
            0 ?x     : y = 0
            ?y ?x    : x != y
            """,
            global_condition="x != 1, y != 2",
        )
        assert table.classify() == "c"
        assert len(table.global_condition.inequalities()) == 2

    def test_string_constants(self):
        table = parse_table("T", "alice 'New York'\nbob boston")
        values = {t.value for row in table.rows for t in row.terms}
        assert values == {"alice", "New York", "bob", "boston"}

    def test_comments_and_blank_lines(self):
        table = parse_table("T", "1 2\n\n% full comment line\n3 4 % trailing")
        assert len(table.rows) == 2

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ParseError):
            parse_table("T", "1 2\n3")

    def test_empty_rejected(self):
        with pytest.raises(ParseError):
            parse_table("T", "   \n  ")

    def test_roundtrip_with_membership(self):
        from repro.core.membership import is_member
        from repro.core.tables import TableDatabase

        table = parse_table("T", "0 ?x\n?y 1")
        db = TableDatabase.single(table)
        assert is_member(Instance({"T": [(0, 5), (6, 1)]}), db)
        assert is_member(Instance({"T": [(0, 1)]}), db)
