"""Documentation checks: the docs exist, are linked, and their CLI
code fences actually execute.

README.md's CLI tour is run command-by-command against a small fixture
database (every ``repro ...`` line in an ``sh`` fence, with file
placeholders substituted), so a renamed flag or subcommand breaks CI
instead of the first reader.  CI's docs job runs this module together
with ``tests/test_examples.py``.
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

import pytest

from test_examples import REPO_ROOT, subprocess_env

FIXTURE_DB = """%database
%table R/2
0 1
0 2
1 3
?v 4 :: v = 0
%table S/2
0 5
1 6
%table T/2
1 7
2 8
3 9
"""

FIXTURE_INSTANCE = """%instance
%relation R/2
0 1
"""

FIXTURE_QUERY = "V(Y) :- R(X, Y), S(X, Z), X = 0.\n"


def _cli_lines():
    text = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    fences = re.findall(r"```sh\n(.*?)```", text, flags=re.S)
    lines = []
    for fence in fences:
        for raw in fence.splitlines():
            line = raw.split("#", 1)[0].strip()
            if line.startswith("repro "):
                lines.append(line)
    return lines


CLI_LINES = _cli_lines()


def test_readme_and_architecture_exist_and_are_linked():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    roadmap = (REPO_ROOT / "ROADMAP.md").read_text(encoding="utf-8")
    assert (REPO_ROOT / "docs" / "architecture.md").is_file()
    assert "docs/architecture.md" in readme
    assert "docs/architecture.md" in roadmap
    assert "README.md" in roadmap


def test_readme_covers_the_required_tour():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for required in (
        "pytest",
        "--explain",
        "--ordering",
        "bench_histogram_selectivity.py",
        "examples/quickstart.py",
    ):
        assert required in readme, f"README.md lost its {required} section"


def test_readme_mentions_every_package():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    packages = sorted(
        p.name
        for p in (REPO_ROOT / "src" / "repro").iterdir()
        if p.is_dir() and (p / "__init__.py").exists()
    )
    missing = [name for name in packages if f"`{name}`" not in readme]
    assert not missing, f"README package index is missing {missing}"


def test_readme_has_cli_fences():
    assert len(CLI_LINES) >= 8, "README's CLI tour shrank unexpectedly"


@pytest.mark.parametrize("line", CLI_LINES)
def test_readme_cli_fence_executes(line, tmp_path):
    """Each ``repro ...`` line in README's sh fences runs without a usage
    error against fixture files (exit 0 or a legitimate yes/no 0/1)."""
    files = {
        "db.pwt": FIXTURE_DB,
        "sub.pwt": FIXTURE_DB,
        "super.pwt": FIXTURE_DB,
        "world.pwi": FIXTURE_INSTANCE,
        "facts.pwi": FIXTURE_INSTANCE,
        "q.dl": FIXTURE_QUERY,
        "q1.dl": FIXTURE_QUERY,
        "q2.dl": FIXTURE_QUERY,
    }
    for name, content in files.items():
        (tmp_path / name).write_text(content, encoding="utf-8")

    args = []
    for token in re.findall(r"'[^']*'|\S+", line)[1:]:
        token = token.strip("'")
        if token in files:
            token = str(tmp_path / token)
        args.append(token)

    result = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=subprocess_env(),
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode in (0, 1), (
        f"README fence {line!r} exited {result.returncode}\n"
        f"stderr:\n{result.stderr[-2000:]}"
    )
