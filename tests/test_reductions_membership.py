"""Machine checks of the Theorem 3.1 reductions against the coloring solver."""

import pytest

from repro.reductions import (
    decide_colorable_via_etable,
    decide_colorable_via_itable,
    decide_colorable_via_view,
    etable_membership,
    itable_membership,
    view_membership,
)
from repro.solvers import (
    Graph,
    complete_graph,
    cycle_graph,
    example_graph_fig4a,
    is_colorable,
    random_graph,
)

STRUCTURED = [
    example_graph_fig4a(),
    complete_graph(3),
    complete_graph(4),   # the smallest non-3-colorable graph
    cycle_graph(4),
    cycle_graph(5),
    Graph([1, 2], [(1, 2)]),
]


class TestETableReduction:
    """Theorem 3.1(2), Figure 4(c)."""

    @pytest.mark.parametrize("graph", STRUCTURED, ids=repr)
    def test_structured(self, graph):
        assert decide_colorable_via_etable(graph) == is_colorable(graph, 3)

    def test_random(self, rng):
        for _ in range(8):
            graph = random_graph(5, 0.5, rng)
            assert decide_colorable_via_etable(graph) == is_colorable(graph, 3)

    def test_construction_shape(self):
        reduction = etable_membership(example_graph_fig4a())
        table = reduction.db["T"]
        assert table.classify() in ("e", "codd")  # e unless the graph is empty
        # 6 constant rows + one per edge.
        assert len(table.rows) == 6 + 5
        assert reduction.instance["T"].facts == {
            tuple(map(lambda v: v, pair))
            for pair in reduction.instance["T"].facts
        }


class TestITableReduction:
    """Theorem 3.1(3), Figure 4(b)."""

    @pytest.mark.parametrize("graph", STRUCTURED, ids=repr)
    def test_structured(self, graph):
        assert decide_colorable_via_itable(graph) == is_colorable(graph, 3)

    def test_random(self, rng):
        for _ in range(8):
            graph = random_graph(5, 0.5, rng)
            assert decide_colorable_via_itable(graph) == is_colorable(graph, 3)

    def test_construction_shape(self):
        reduction = itable_membership(example_graph_fig4a())
        table = reduction.db["T"]
        assert table.classify() == "i"
        assert len(table.rows) == 3 + 5  # colors + one per node
        assert len(table.global_condition.inequalities()) == 5  # one per edge


class TestViewReduction:
    """Theorem 3.1(4), Figure 4(d)."""

    @pytest.mark.parametrize(
        "graph",
        [complete_graph(3), cycle_graph(3), Graph([1, 2], [(1, 2)]), complete_graph(4)],
        ids=repr,
    )
    def test_structured(self, graph):
        assert decide_colorable_via_view(graph) == is_colorable(graph, 3)

    def test_fig4a(self):
        graph = example_graph_fig4a()
        assert decide_colorable_via_view(graph) == is_colorable(graph, 3)

    def test_construction_shape(self):
        reduction = view_membership(example_graph_fig4a())
        assert reduction.db["R"].classify() == "codd"
        assert reduction.db["S"].classify() == "codd"
        assert reduction.db.is_codd()  # vector of Codd-tables
        assert reduction.query.is_positive_existential()
        # One R-row per edge, carrying two fresh nulls each.
        assert len(reduction.db["R"].rows) == 5
        assert len(reduction.db["R"].variables()) == 10
