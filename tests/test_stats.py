"""Unit tests for the statistics subsystem and cardinality model.

Collection is checked against hand-countable tables (both c-table and
complete-instance sources); the estimator is checked for the *ordinal*
properties the greedy join orderer relies on — selections shrink, joins
with keys beat products, wild join columns cost more than ground ones —
not for absolute accuracy, which the model does not promise.
"""

from __future__ import annotations

import random

from repro.core.tables import CTable, TableDatabase
from repro.core.terms import Variable
from repro.relational import (
    ColEq,
    ColEqConst,
    Instance,
    Join,
    Product,
    Scan,
    Select,
    Statistics,
    estimate,
    evaluate_to_relation,
)
from repro.relational.stats import DEFAULT_ROWS, join_estimate
from repro.workloads import random_nway_join_database, star_join_database

x = Variable("x")


class TestCollection:
    def test_ctable_counts(self):
        table = CTable("R", 2, [(1, 2), (1, x), (3, 2)])
        stats = Statistics.collect(TableDatabase([table]))
        ts = stats.get("R")
        assert ts.rows == 3
        col0, col1 = ts.columns
        assert (col0.ground, col0.wild, col0.distinct) == (3, 0, 2)
        assert (col1.ground, col1.wild, col1.distinct) == (2, 1, 1)

    def test_instance_counts(self):
        instance = Instance({"R": [(1, 2), (3, 4), (3, 2)], "S": [(0,)]})
        stats = Statistics.collect(instance)
        ts = stats.get("R")
        assert ts.rows == 3
        assert ts.columns[0].distinct == 2
        assert ts.columns[0].wild == 0
        assert stats.get("S").rows == 1

    def test_unknown_relation_falls_back_to_defaults(self):
        stats = Statistics()
        est = estimate(Scan("missing", 2), stats)
        assert est.rows == DEFAULT_ROWS

    def test_describe_mentions_wild_columns(self):
        table = CTable("R", 1, [(x,), (1,)])
        stats = Statistics.collect(TableDatabase([table]))
        assert "wild" in stats.get("R").describe()


class TestEstimatorOrdinalProperties:
    def _stats(self):
        rng = random.Random(0)
        return Statistics.collect(star_join_database(rng, num_dims=2, dim_rows=8, fact_rows=64))

    def test_equality_selection_shrinks(self):
        stats = self._stats()
        scan = Scan("F", 2)
        selected = Select(scan, [ColEqConst(0, 3)])
        assert estimate(selected, stats).rows < estimate(scan, stats).rows

    def test_keyed_join_beats_product(self):
        stats = self._stats()
        product = Product(Scan("D0", 2), Scan("F", 2))
        keyed = Join(Scan("D0", 2), Scan("F", 2), [(0, 0)])
        assert estimate(keyed, stats).rows < estimate(product, stats).rows

    def test_wild_join_columns_cost_more(self):
        ground = CTable("G", 1, [(i,) for i in range(8)])
        wild = CTable("W", 1, [(Variable(f"w{i}"),) for i in range(4)] + [(i,) for i in range(4)])
        probe = CTable("P", 1, [(i,) for i in range(8)])
        stats = Statistics.collect(TableDatabase([ground, wild, probe]))
        ground_est = estimate(Join(Scan("G", 1), Scan("P", 1), [(0, 0)]), stats)
        wild_est = estimate(Join(Scan("W", 1), Scan("P", 1), [(0, 0)]), stats)
        assert wild_est.rows > ground_est.rows

    def test_join_estimate_is_roughly_calibrated_on_keys(self):
        # D0 keys are unique and F draws from them uniformly: the keyed
        # join really has |F| rows and the estimate should land near it.
        rng = random.Random(1)
        db = star_join_database(rng, num_dims=2, dim_rows=8, fact_rows=64)
        stats = Statistics.collect(db)
        est = join_estimate(
            estimate(Scan("D0", 2), stats), estimate(Scan("F", 2), stats), [(0, 0)]
        )
        world = Instance(
            {t.name: [[c.value for c in row.terms] for row in t.rows] for t in db}
        )
        actual = len(evaluate_to_relation(Join(Scan("D0", 2), Scan("F", 2), [(0, 0)]), world))
        assert actual / 4 <= est.rows <= actual * 4

    def test_instance_evaluator_optimize_flag_is_equivalent(self):
        rng = random.Random(9)
        db = random_nway_join_database(rng, 3, rows_per_table=4, num_constants=2)
        world = Instance(
            {t.name: [[c.value for c in row.terms] for row in t.rows] for t in db}
        )
        expr = Select(
            Product(Product(Scan("R0", 2), Scan("R1", 2)), Scan("R2", 2)),
            [ColEq(0, 2), ColEq(3, 4)],
        )
        plain = evaluate_to_relation(expr, world)
        optimized = evaluate_to_relation(expr, world, optimize=True)
        assert plain == optimized
