"""Unit tests for the statistics subsystem and cardinality model.

Collection is checked against hand-countable tables (both c-table and
complete-instance sources), including the condition-aware treatment of
variable cells (local/global equalities pin a variable to a constant or
small domain, reclassifying the cell from "wild" to ground); histograms
are checked for their MCV/bucket lookup contract and the degenerate
shapes (empty tables, all-variable columns, single buckets, ties at the
MCV cut).  The estimator is checked for the *ordinal* properties the
join orderers rely on — selections shrink, joins with keys beat
products, wild join columns cost more than ground ones, skew flips the
DP plan — not for absolute accuracy, which the model does not promise.
The ``StatsStore`` cache is checked for its amortisation contract:
collect once, serve snapshots, recollect only what an update
invalidated.
"""

from __future__ import annotations

import random

from repro.core.conditions import BoolAtom, BoolOr, Conjunction, Eq, Neq
from repro.core.tables import CTable, Row, TableDatabase
from repro.core.terms import Constant, Variable
from repro.ctalgebra import evaluate_ct_database, evaluate_ct_ordered
from repro.extensions.updates import delete_fact, insert_fact, modify_fact
from repro.relational import (
    ColEq,
    ColEqConst,
    ColNeqConst,
    Instance,
    Join,
    Product,
    Scan,
    Select,
    Statistics,
    StatsStore,
    estimate,
    evaluate_to_relation,
    plan,
)
from repro.relational.stats import DEFAULT_DISTINCT, DEFAULT_ROWS, join_estimate
from repro.workloads import (
    random_nway_join_database,
    skewed_star_join_database,
    skewed_star_join_expression,
    star_join_database,
)

x = Variable("x")


class TestCollection:
    def test_ctable_counts(self):
        table = CTable("R", 2, [(1, 2), (1, x), (3, 2)])
        stats = Statistics.collect(TableDatabase([table]))
        ts = stats.get("R")
        assert ts.rows == 3
        col0, col1 = ts.columns
        assert (col0.ground, col0.wild, col0.distinct) == (3, 0, 2)
        assert (col1.ground, col1.wild, col1.distinct) == (2, 1, 1)

    def test_instance_counts(self):
        instance = Instance({"R": [(1, 2), (3, 4), (3, 2)], "S": [(0,)]})
        stats = Statistics.collect(instance)
        ts = stats.get("R")
        assert ts.rows == 3
        assert ts.columns[0].distinct == 2
        assert ts.columns[0].wild == 0
        assert stats.get("S").rows == 1

    def test_unknown_relation_falls_back_to_defaults(self):
        stats = Statistics()
        est = estimate(Scan("missing", 2), stats)
        assert est.rows == DEFAULT_ROWS

    def test_arity_mismatch_falls_back_to_defaults(self):
        # Regression: statistics collected before a schema change carry an
        # arity-2 TableStats for R; estimating a scan of R at arity 3 used
        # to raise IndexError when a predicate touched column 2.
        table = CTable("R", 2, [(1, 2), (3, 4)])
        stats = Statistics.collect(TableDatabase([table]))
        est = estimate(Select(Scan("R", 3), [ColEqConst(2, 7)]), stats)
        assert est.arity == 3
        assert est.rows == DEFAULT_ROWS / DEFAULT_DISTINCT
        bare = estimate(Scan("R", 3), stats)
        assert bare.rows == DEFAULT_ROWS
        assert bare.distinct == (DEFAULT_DISTINCT,) * 3

    def test_describe_mentions_wild_columns(self):
        table = CTable("R", 1, [(x,), (1,)])
        stats = Statistics.collect(TableDatabase([table]))
        assert "wild" in stats.get("R").describe()


class TestEstimatorOrdinalProperties:
    def _stats(self):
        rng = random.Random(0)
        return Statistics.collect(star_join_database(rng, num_dims=2, dim_rows=8, fact_rows=64))

    def test_equality_selection_shrinks(self):
        stats = self._stats()
        scan = Scan("F", 2)
        selected = Select(scan, [ColEqConst(0, 3)])
        assert estimate(selected, stats).rows < estimate(scan, stats).rows

    def test_keyed_join_beats_product(self):
        stats = self._stats()
        product = Product(Scan("D0", 2), Scan("F", 2))
        keyed = Join(Scan("D0", 2), Scan("F", 2), [(0, 0)])
        assert estimate(keyed, stats).rows < estimate(product, stats).rows

    def test_wild_join_columns_cost_more(self):
        ground = CTable("G", 1, [(i,) for i in range(8)])
        wild = CTable("W", 1, [(Variable(f"w{i}"),) for i in range(4)] + [(i,) for i in range(4)])
        probe = CTable("P", 1, [(i,) for i in range(8)])
        stats = Statistics.collect(TableDatabase([ground, wild, probe]))
        ground_est = estimate(Join(Scan("G", 1), Scan("P", 1), [(0, 0)]), stats)
        wild_est = estimate(Join(Scan("W", 1), Scan("P", 1), [(0, 0)]), stats)
        assert wild_est.rows > ground_est.rows

    def test_join_estimate_is_roughly_calibrated_on_keys(self):
        # D0 keys are unique and F draws from them uniformly: the keyed
        # join really has |F| rows and the estimate should land near it.
        rng = random.Random(1)
        db = star_join_database(rng, num_dims=2, dim_rows=8, fact_rows=64)
        stats = Statistics.collect(db)
        est = join_estimate(
            estimate(Scan("D0", 2), stats), estimate(Scan("F", 2), stats), [(0, 0)]
        )
        world = Instance(
            {t.name: [[c.value for c in row.terms] for row in t.rows] for t in db}
        )
        actual = len(evaluate_to_relation(Join(Scan("D0", 2), Scan("F", 2), [(0, 0)]), world))
        assert actual / 4 <= est.rows <= actual * 4

    def test_instance_evaluator_optimize_flag_is_equivalent(self):
        rng = random.Random(9)
        db = random_nway_join_database(rng, 3, rows_per_table=4, num_constants=2)
        world = Instance(
            {t.name: [[c.value for c in row.terms] for row in t.rows] for t in db}
        )
        expr = Select(
            Product(Product(Scan("R0", 2), Scan("R1", 2)), Scan("R2", 2)),
            [ColEq(0, 2), ColEq(3, 4)],
        )
        plain = evaluate_to_relation(expr, world)
        for ordering in ("greedy", "dp"):
            optimized = evaluate_to_relation(
                expr, world, optimize=True, ordering=ordering
            )
            assert plain == optimized


class TestStatsStore:
    def _db(self):
        return TableDatabase(
            [
                CTable("R", 2, [(1, 2), (3, 4), (5, 6)]),
                CTable("S", 1, [(0,), (1,)]),
            ]
        )

    def test_snapshot_collects_each_table_once(self):
        store = StatsStore(self._db())
        first = store.snapshot()
        second = store.snapshot()
        assert store.table_collections == 2
        assert second.get("R") is first.get("R")
        assert second.get("S") is first.get("S")
        assert first.get("R").rows == 3

    def test_invalidate_recollects_only_that_table(self):
        store = StatsStore(self._db())
        first = store.snapshot()
        store.invalidate("R")
        second = store.snapshot()
        assert store.table_collections == 3  # R twice, S once
        assert second.get("R") is not first.get("R")
        assert second.get("S") is first.get("S")

    def test_update_operators_invalidate_and_rebind(self):
        db = self._db()
        store = StatsStore(db)
        before = store.snapshot()
        assert before.get("R").rows == 3

        updated = insert_fact(db, "R", (7, 8), stats=store)
        assert store.source is updated
        after = store.snapshot()
        assert after.get("R").rows == 4  # fresh statistics for R...
        assert after.get("S") is before.get("S")  # ...cached ones for S

        updated = delete_fact(updated, "R", (1, 2), stats=store)
        assert store.snapshot().get("R").rows == 3

        updated = modify_fact(updated, "S", (0,), (9,), stats=store)
        snap = store.snapshot()
        assert snap.get("S").rows == 2
        assert 9 in {c.value for row in updated["S"].rows for c in row.terms}

    def test_failed_modify_leaves_the_store_untouched(self):
        # Regression: a modify whose insert half would fail must not
        # rebind the store to the half-updated intermediate database.
        import pytest

        db = self._db()
        store = StatsStore(db)
        store.snapshot()
        with pytest.raises(ValueError):
            modify_fact(db, "R", (1, 2), (1, 2, 3), stats=store)
        assert store.source is db
        assert store.snapshot().get("R").rows == 3
        assert store.table_collections == 2  # nothing was invalidated

    def test_snapshot_without_source_serves_the_cache(self):
        store = StatsStore(self._db())
        store.snapshot()
        unbound = StatsStore()
        assert len(unbound.snapshot()) == 0
        store.rebind(None)
        assert sorted(t.name for t in store.snapshot()) == ["R", "S"]
        assert store.table_collections == 2

    def test_arity_change_forces_recollection(self):
        store = StatsStore(self._db())
        store.snapshot()
        widened = TableDatabase(
            [CTable("R", 3, [(1, 2, 3)]), CTable("S", 1, [(0,), (1,)])]
        )
        snap = store.snapshot(widened)
        assert snap.get("R").arity == 3 and snap.get("R").rows == 1
        assert store.table_collections == 3  # only R was recollected

    def test_plan_accepts_a_store(self):
        rng = random.Random(2)
        db = star_join_database(rng, num_dims=3, dim_rows=4, fact_rows=16)
        store = StatsStore(db)
        from repro.workloads import star_join_expression

        explain: list[str] = []
        store.snapshot()  # prime the cache; plan() snapshots without a source
        planned = plan(star_join_expression(3), stats=store, explain=explain)
        assert planned.arity == star_join_expression(3).arity
        assert explain and explain[0].startswith("join order: ")

    def test_evaluate_ct_database_optimize_shares_one_collection(self):
        rng = random.Random(5)
        db = star_join_database(rng, num_dims=3, dim_rows=3, fact_rows=8)
        from repro.workloads import star_join_expression

        expressions = {
            "V1": star_join_expression(3),
            "V2": star_join_expression(3),
            "V3": Scan("F", 3),
        }
        store = StatsStore(db)
        optimized = evaluate_ct_database(expressions, db, optimize=True, stats=store)
        # One collection pass for all three views, not one per view.
        assert store.table_collections == len(db)
        naive = evaluate_ct_database(expressions, db)
        for name in expressions:
            assert set(optimized[name].rows) == set(naive[name].rows), name


class TestHistograms:
    def _skewed_stats(self, buckets=8):
        # Column 0: value 0 sixty times, value 1 twenty times, 100..119 once.
        rows = (
            [(0, i) for i in range(60)]
            + [(1, 200 + i) for i in range(20)]
            + [(100 + i, 300 + i) for i in range(20)]
        )
        db = TableDatabase([CTable("R", 2, rows)])
        return Statistics.collect(db, buckets=buckets)

    def test_mcv_frequencies_are_exact(self):
        hist = self._skewed_stats().get("R").columns[0].hist
        assert hist.eq_fraction(Constant(0)) == 0.6
        assert hist.eq_fraction(Constant(1)) == 0.2
        assert hist.neq_fraction(Constant(0)) == 0.4

    def test_tail_values_use_bucket_average(self):
        hist = self._skewed_stats().get("R").columns[0].hist
        # Tail values each appear once among 100 rows.
        assert abs(hist.eq_fraction(Constant(105)) - 0.01) < 1e-9

    def test_absent_values_estimate_zero(self):
        hist = self._skewed_stats().get("R").columns[0].hist
        assert hist.eq_fraction(Constant(999)) == 0.0
        assert hist.neq_fraction(Constant(999)) == 1.0

    def test_range_fraction(self):
        hist = self._skewed_stats().get("R").columns[0].hist
        assert abs(hist.range_fraction(Constant(100), Constant(119)) - 0.2) < 0.05
        assert hist.range_fraction(Constant(0), Constant(1)) == 0.8
        assert hist.range_fraction() == 1.0
        assert hist.range_fraction(Constant(500), Constant(600)) == 0.0

    def test_selection_estimate_uses_mcv(self):
        stats = self._skewed_stats()
        hot = estimate(Select(Scan("R", 2), [ColEqConst(0, 0)]), stats)
        rare = estimate(Select(Scan("R", 2), [ColEqConst(0, 105)]), stats)
        assert abs(hot.rows - 60.0) < 1e-6
        assert rare.rows <= 2.0

    def test_neq_selection_estimate_uses_histogram(self):
        stats = self._skewed_stats()
        est = estimate(Select(Scan("R", 2), [ColNeqConst(0, 0)]), stats)
        assert abs(est.rows - 40.0) < 1e-6

    def test_buckets_zero_reproduces_constant_model(self):
        stats = self._skewed_stats(buckets=0)
        assert stats.get("R").columns[0].hist is None
        est = estimate(Select(Scan("R", 2), [ColEqConst(0, 0)]), stats)
        assert abs(est.rows - 100.0 / 22.0) < 1e-9  # 22 distinct values
        neq = estimate(Select(Scan("R", 2), [ColNeqConst(0, 0)]), stats)
        assert abs(neq.rows - 90.0) < 1e-9  # the 0.9 constant

    def test_empty_table(self):
        db = TableDatabase([CTable("E", 2, [])])
        stats = Statistics.collect(db)
        ts = stats.get("E")
        assert ts.rows == 0
        assert ts.columns[0].hist is None
        est = estimate(Select(Scan("E", 2), [ColEqConst(0, 1)]), stats)
        assert est.rows == 0.0

    def test_all_variable_column(self):
        table = CTable("W", 1, [(Variable(f"w{i}"),) for i in range(5)])
        stats = Statistics.collect(TableDatabase([table]))
        col = stats.get("W").columns[0]
        assert (col.ground, col.wild, col.distinct, col.pinned) == (0, 5, 0, 0)
        assert col.hist is None
        est = estimate(Select(Scan("W", 1), [ColEqConst(0, 3)]), stats)
        # Every row is wild: all of them may satisfy the selection.
        assert est.rows == 5.0

    def test_single_bucket_degenerate(self):
        stats = self._skewed_stats(buckets=1)
        hist = stats.get("R").columns[0].hist
        assert len(hist.buckets) == 1
        assert hist.eq_fraction(Constant(0)) == 0.6  # MCVs unaffected
        assert abs(hist.eq_fraction(Constant(105)) - 0.01) < 1e-9

    def test_mcv_ties_are_deterministic(self):
        # 14 values tied at count 3 with an mcv limit of 10: the cut must
        # fall deterministically (value order) and repeated collections
        # must agree exactly.  (Payload column keeps the rows distinct —
        # c-tables are row *sets*.)
        rows = [(v, 1000 + 3 * v + j) for v in range(14) for j in range(3)] + [
            (100 + i, 2000 + i) for i in range(60)
        ]
        db = TableDatabase([CTable("T", 2, rows)])
        first = Statistics.collect(db).get("T").columns[0].hist
        second = Statistics.collect(db).get("T").columns[0].hist
        assert list(first.mcvs) == list(second.mcvs)
        assert len(first.mcvs) == 10
        kept = sorted(v.value for v in first.mcvs)
        # Ties break by term sort key (textual), deterministically.
        assert kept == sorted(sorted(range(14), key=str)[:10])
        # A tied value dropped from the MCV list estimates via its bucket
        # at roughly the same frequency.
        assert first.eq_fraction(Constant(12)) > 0.0

    def test_stale_arity_mismatch_falls_back(self):
        # Histograms collected before a schema change must not be consulted
        # for a scan of a different arity.
        rows = [(0, i) for i in range(10)]
        stats = Statistics.collect(TableDatabase([CTable("R", 2, rows)]))
        est = estimate(Select(Scan("R", 3), [ColEqConst(2, 7)]), stats)
        assert est.arity == 3
        assert est.rows == DEFAULT_ROWS / DEFAULT_DISTINCT

    def test_uniform_columns_carry_no_mcvs(self):
        rows = [(i % 10,) for i in range(100)]
        hist = Statistics.collect(TableDatabase([CTable("U", 1, rows)])).get(
            "U"
        ).columns[0].hist
        assert hist.mcvs == {}
        assert abs(hist.eq_fraction(Constant(3)) - 0.1) < 1e-9

    def test_explain_reports_selectivity_source(self):
        stats = self._skewed_stats()
        lines: list[str] = []
        estimate(Select(Scan("R", 2), [ColEqConst(0, 0)]), stats, lines)
        assert lines and "selectivity" in lines[0] and "mcv" in lines[0]

    def test_describe_and_histogram_lines(self):
        ts = self._skewed_stats().get("R")
        assert "distinct" in ts.describe()
        lines = ts.histogram_lines()
        assert any("R.$0" in line and "mcv" in line for line in lines)


class TestConditionPinning:
    def test_local_equality_pins_a_variable(self):
        v = Variable("v")
        table = CTable(
            "R", 2, [Row((v, 10), BoolAtom(Eq(v, Constant(3)))), ((3, 11))]
        )
        col = Statistics.collect(TableDatabase([table])).get("R").columns[0]
        assert (col.ground, col.pinned, col.wild) == (1, 1, 0)
        assert col.distinct == 1  # both rows hold 3
        assert col.hist.eq_fraction(Constant(3)) == 1.0

    def test_global_condition_pins_a_variable(self):
        v = Variable("v")
        table = CTable("G", 1, [Row((v,))], Conjunction([Eq(v, Constant(5))]))
        col = Statistics.collect(TableDatabase([table])).get("G").columns[0]
        assert (col.pinned, col.wild) == (1, 0)
        assert col.hist.eq_fraction(Constant(5)) == 1.0

    def test_small_or_domain_pins_fractionally(self):
        v = Variable("v")
        condition = BoolOr(
            (BoolAtom(Eq(v, Constant(1))), BoolAtom(Eq(v, Constant(2))))
        )
        table = CTable("D", 1, [Row((v,), condition)])
        col = Statistics.collect(TableDatabase([table])).get("D").columns[0]
        assert (col.pinned, col.wild) == (1, 0)
        assert abs(col.hist.eq_fraction(Constant(1)) - 0.5) < 1e-9
        assert abs(col.hist.eq_fraction(Constant(2)) - 0.5) < 1e-9

    def test_large_or_domain_stays_wild(self):
        v = Variable("v")
        condition = BoolOr(
            tuple(BoolAtom(Eq(v, Constant(i))) for i in range(10))
        )
        table = CTable("D", 1, [Row((v,), condition)])
        col = Statistics.collect(TableDatabase([table])).get("D").columns[0]
        assert (col.pinned, col.wild) == (0, 1)

    def test_inequality_condition_stays_wild(self):
        v = Variable("v")
        table = CTable("N", 1, [Row((v,), BoolAtom(Neq(v, Constant(3))))])
        col = Statistics.collect(TableDatabase([table])).get("N").columns[0]
        assert (col.pinned, col.wild) == (0, 1)

    def test_pinned_join_column_estimates_like_ground(self):
        v = [Variable(f"p{i}") for i in range(4)]
        ground = CTable("G", 1, [(i,) for i in range(8)])
        pinned = CTable(
            "P",
            1,
            [Row((v[i],), BoolAtom(Eq(v[i], Constant(i)))) for i in range(4)]
            + [(i,) for i in range(4, 8)],
        )
        wild = CTable(
            "W",
            1,
            [(Variable(f"w{i}"),) for i in range(4)] + [(i,) for i in range(4, 8)],
        )
        probe = CTable("Q", 1, [(i,) for i in range(8)])
        stats = Statistics.collect(TableDatabase([ground, pinned, wild, probe]))
        ground_est = estimate(Join(Scan("G", 1), Scan("Q", 1), [(0, 0)]), stats)
        pinned_est = estimate(Join(Scan("P", 1), Scan("Q", 1), [(0, 0)]), stats)
        wild_est = estimate(Join(Scan("W", 1), Scan("Q", 1), [(0, 0)]), stats)
        assert pinned_est.rows < wild_est.rows
        assert abs(pinned_est.rows - ground_est.rows) < 1e-6

    def test_describe_mentions_pinned_columns(self):
        v = Variable("v")
        table = CTable("R", 1, [Row((v,), BoolAtom(Eq(v, Constant(3))))])
        stats = Statistics.collect(TableDatabase([table]))
        assert "pinned" in stats.get("R").describe()


class TestSkewFlipsPlanChoice:
    def test_histogram_costing_changes_the_dp_plan(self):
        rng = random.Random(0xAB1987)
        db = skewed_star_join_database(
            rng, num_skewed=2, dim_rows=60, fact_rows=400
        )
        expr = skewed_star_join_expression(2)
        hist_stats = Statistics.collect(db)
        const_stats = Statistics.collect(db, buckets=0)
        hist_plan = plan(expr, stats=hist_stats)
        const_plan = plan(expr, stats=const_stats)
        assert repr(hist_plan) != repr(const_plan)
        # The differently-shaped plans stay equivalent.
        hist_view = evaluate_ct_ordered(expr, db, stats=hist_stats)
        const_view = evaluate_ct_ordered(expr, db, stats=const_stats)
        assert set(hist_view.rows) == set(const_view.rows)
