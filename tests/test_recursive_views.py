"""Recursive (Datalog) materialized views under update streams.

The contract: a recursive view registered through
:meth:`~repro.views.ViewManager.define_datalog` and maintained through
the update notifications must ``rep``-equal a full fixpoint recomputed
from scratch over the updated database after *every* operation of a
mixed insert/delete/modify stream.  Inserts must take the incremental
path (re-fixpoint from the inserted delta over the standing
:class:`~repro.queries.fixpoint.FixpointEvaluation` — asserted via the
``refixpoint_rounds`` / ``refixpoint_recomputes`` counters), while
deletes and modifies fall back to a full re-fixpoint (no sound removal
delta exists for a fixpoint: a removed base row invalidates every
round that consumed it).

Also here: the ``define_datalog`` / ``define_text`` /
``lookup_datalog`` manager surface, sidecar persistence round-trips
for recursive views, and the CLI + HTTP server surfaces
(``repro eval --datalog``, ``repro view define`` with recursive text,
``POST /dbs/{db}/query`` with ``"datalog": true``).
"""

from __future__ import annotations

import random

import pytest

from repro.core.tables import CTable, Row, TableDatabase, codd_table
from repro.core.terms import Constant, Variable
from repro.core.worlds import enumerate_worlds, strong_canonicalize
from repro.extensions import apply_update
from repro.queries.fixpoint import CTFixpoint, datalog_fingerprint
from repro.relational.parser import parse_datalog
from repro.views import ViewError, ViewManager
from repro.views.persist import manager_from_registry, manager_to_registry
from repro.workloads import (
    transitive_closure_program,
    uncertain_graph_database,
    update_stream,
)

TC = transitive_closure_program()


def _world_set(db, extra):
    worlds = enumerate_worlds(db, extra_constants=extra)
    return {strong_canonicalize(w, extra) for w in worlds}


def assert_view_matches(manager, name, text, db):
    """The maintained recursive view rep-equals a from-scratch fixpoint."""
    maintained = manager.get(name)
    program = CTFixpoint(parse_datalog(text), name=name)
    reference = program.run(db)[program.outputs[0]]
    extra = sorted(
        db.constants() | maintained.constants() | reference.constants(),
        key=Constant.sort_key,
    )
    left = _world_set(TableDatabase.single(maintained), extra)
    right = _world_set(TableDatabase.single(reference), extra)
    assert left == right


# ---------------------------------------------------------------------------
# The randomized maintenance harness
# ---------------------------------------------------------------------------


class TestMaintainedRecursiveViews:
    @pytest.mark.parametrize("seed", range(20))
    def test_mixed_stream_matches_recompute(self, seed):
        rng = random.Random(0x2EC + seed)
        db = uncertain_graph_database(
            rng,
            num_nodes=4,
            num_edges=rng.randint(2, 5),
            num_variables=2,
            var_probability=0.2,
            cond_probability=0.3,
        )
        manager = ViewManager(db)
        manager.define_datalog("TC", TC)
        assert_view_matches(manager, "TC", TC, db)
        for op in update_stream(rng, db, 4, fresh_probability=0.1):
            db = apply_update(db, op, views=manager)
            assert_view_matches(manager, "TC", TC, db)

    def test_insert_only_stream_stays_incremental(self):
        rng = random.Random(0x1C5)
        db = TableDatabase(
            [codd_table("edge", 2, [(0, 1), (1, 2), (2, 3)])]
        )
        manager = ViewManager(db)
        manager.define_datalog("TC", TC)
        ops = update_stream(
            rng, db, 8, insert_weight=1, delete_weight=0, modify_weight=0
        )
        for op in ops:
            db = apply_update(db, op, views=manager)
            assert_view_matches(manager, "TC", TC, db)
        assert manager.counters["refixpoint_recomputes"] == 0
        assert manager.counters["refixpoint_rounds"] > 0

    def test_delete_falls_back_to_recompute(self):
        db = TableDatabase([codd_table("edge", 2, [(0, 1), (1, 2)])])
        manager = ViewManager(db)
        manager.define_datalog("TC", TC)
        db = apply_update(db, ("delete", "edge", (Constant(1), Constant(2))), views=manager)
        assert manager.counters["refixpoint_recomputes"] == 1
        assert_view_matches(manager, "TC", TC, db)
        assert {r.terms for r in manager.get("TC").rows} == {(Constant(0), Constant(1))}

    def test_modify_recomputes_then_reinserts(self):
        db = TableDatabase([codd_table("edge", 2, [(0, 1), (1, 2)])])
        manager = ViewManager(db)
        manager.define_datalog("TC", TC)
        db = apply_update(
            db,
            ("modify", "edge", (Constant(1), Constant(2)), (Constant(1), Constant(0))),
            views=manager,
        )
        assert manager.counters["refixpoint_recomputes"] >= 1
        assert_view_matches(manager, "TC", TC, db)

    def test_insert_joining_conditional_edge(self):
        # The inserted ground edge chains through a condition-bearing
        # one: the derived closure rows must inherit the condition.
        v = Variable("v")
        db = TableDatabase(
            [
                CTable(
                    "edge",
                    2,
                    [Row((Constant(1), Constant(2)), conditions([v]))],
                )
            ]
        )
        manager = ViewManager(db)
        manager.define_datalog("TC", TC)
        db = apply_update(db, ("insert", "edge", (Constant(0), Constant(1))), views=manager)
        assert_view_matches(manager, "TC", TC, db)
        long_rows = [
            r
            for r in manager.get("TC").rows
            if r.terms == (Constant(0), Constant(2))
        ]
        assert long_rows and all(r.has_local_condition() for r in long_rows)


def conditions(variables):
    from repro.core.conditions import Conjunction, Eq

    return Conjunction([Eq(variables[0], Constant(7))])


# ---------------------------------------------------------------------------
# Manager surface
# ---------------------------------------------------------------------------


class TestDefineSurface:
    def _db(self):
        return TableDatabase([codd_table("edge", 2, [(0, 1), (1, 2)])])

    def test_define_datalog_accepts_text_program_and_fixpoint(self):
        for form in (TC, parse_datalog(TC), CTFixpoint(parse_datalog(TC))):
            manager = ViewManager(self._db())
            table = manager.define_datalog("TC", form)
            assert table.name == "TC"
            assert len(table) == 3

    def test_output_must_be_idb(self):
        manager = ViewManager(self._db())
        with pytest.raises(ViewError, match="edge"):
            manager.define_datalog("TC", TC, output="edge")

    def test_text_is_recursive_dispatch(self):
        assert ViewManager.text_is_recursive(TC)
        assert not ViewManager.text_is_recursive("V(X) :- edge(X, Y).")
        manager = ViewManager(self._db())
        manager.define_text("TC", TC)
        manager.define_text("V", "V(X) :- edge(X, Y).")
        assert len(manager.get("TC")) == 3
        assert len(manager.get("V")) == 2

    def test_lookup_datalog_by_fingerprint(self):
        manager = ViewManager(self._db())
        manager.define_text("TC", TC)
        reordered = "TC(X,Z) :- TC(X,Y), edge(Y,Z). TC(X,Y) :- edge(X,Y)."
        name, table = manager.lookup_datalog(parse_datalog(reordered))
        assert name == "TC" and len(table) == 3
        assert manager.lookup_datalog(parse_datalog("P(X,Y) :- edge(X,Y).")) is None

    def test_drop_and_refresh(self):
        manager = ViewManager(self._db())
        manager.define_text("TC", TC)
        manager.refresh("TC")
        assert manager.counters["refixpoint_recomputes"] == 1
        manager.drop("TC")
        with pytest.raises(ViewError):
            manager.get("TC")

    def test_materializations_carry_datalog_fingerprint(self):
        manager = ViewManager(self._db())
        manager.define_text("TC", TC)
        ((name, query_text, fingerprint, table),) = manager.materializations()
        assert name == "TC" and query_text == TC
        assert fingerprint == datalog_fingerprint(parse_datalog(TC))
        assert len(table) == 3

    def test_persist_roundtrip(self):
        db = self._db()
        manager = ViewManager(db)
        manager.define_text("TC", TC)
        registry = manager_to_registry(manager, digest="d0")
        rebuilt, stale = manager_from_registry(registry, db, digest="d0")
        assert not stale
        assert {r.terms for r in rebuilt.get("TC").rows} == {
            r.terms for r in manager.get("TC").rows
        }


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


@pytest.fixture
def graph_db_file(tmp_path):
    from repro.io import dumps_database

    db = TableDatabase([codd_table("edge", 2, [(1, 2), (2, 3), (3, 4)])])
    path = tmp_path / "graph.pwt"
    path.write_text(dumps_database(db))
    return str(path)


class TestDatalogCli:
    def _main(self, *argv):
        from repro.cli import main

        return main(list(argv))

    def test_eval_datalog(self, graph_db_file, capsys):
        assert self._main("eval", graph_db_file, TC, "--datalog", "--explain") == 0
        out = capsys.readouterr().out
        assert "TC/2" in out and "6 rows" in out
        assert "round 1" in out

    def test_eval_datalog_naive_agrees(self, graph_db_file, capsys):
        assert self._main("eval", graph_db_file, TC, "--datalog") == 0
        semi = sorted(capsys.readouterr().out.splitlines())
        assert self._main("eval", graph_db_file, TC, "--datalog", "--naive") == 0
        naive = sorted(capsys.readouterr().out.splitlines())
        assert semi == naive

    def test_eval_rejects_recursion_without_flag(self, graph_db_file, capsys):
        assert self._main("eval", graph_db_file, TC) == 2
        assert "recursi" in capsys.readouterr().err

    def test_recursive_view_roundtrip(self, graph_db_file, capsys):
        assert self._main("view", "define", graph_db_file, TC) == 0
        assert "defined view TC/2" in capsys.readouterr().out
        assert self._main("view", "list", graph_db_file) == 0
        assert "fresh" in capsys.readouterr().out
        assert (
            self._main(
                "eval", graph_db_file, TC, "--datalog", "--use-views", "--explain"
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "answered by materialized view 'TC'" in out
        assert self._main("view", "drop", graph_db_file, "TC") == 0


# ---------------------------------------------------------------------------
# Server surface
# ---------------------------------------------------------------------------


class TestDatalogServer:
    @pytest.fixture
    def server(self):
        from repro.server.app import make_server, start_in_thread

        server = make_server(workers=0)
        start_in_thread(server)
        yield server
        server.server_close()

    @pytest.fixture
    def client(self, server):
        from repro.io.jsonio import database_to_json
        from repro.server.client import ServerClient

        host, port = server.server_address
        client = ServerClient(f"http://{host}:{port}")
        db = TableDatabase([codd_table("edge", 2, [(1, 2), (2, 3), (3, 4)])])
        client.create_database("g", database_to_json(db))
        return client

    def test_query_fixpoint_and_cache(self, client):
        first = client.query("g", TC, datalog=True, explain=True)
        assert first["rows"] == 6 and first["served_by"] == "inline"
        assert any(line.startswith("round 1") for line in first["explain"])
        assert client.query("g", TC, datalog=True, naive=True)["rows"] == 6
        client.query("g", TC, datalog=True)
        assert client.query("g", TC, datalog=True)["served_by"] == "cache"

    def test_recursive_view_and_incremental_update(self, client):
        view = client.define_view("g", TC)
        assert view["name"] == "TC" and view["rows"] == 6
        answered = client.query("g", TC, datalog=True, use_views=True)
        assert answered["served_by"] == "view"
        assert answered["answered_by_view"] == "TC"
        client.update("g", ["insert", "edge", [4, 1]])
        after = client.query("g", TC, datalog=True, use_views=True)
        assert after["version"] == 1
        assert after["rows"] == 16  # the 4-cycle closes completely
        naive = client.query("g", TC, datalog=True, naive=True)
        assert naive["rows"] == after["rows"]

    def test_bad_datalog_is_a_client_error(self, client):
        from repro.server.client import ServerError

        with pytest.raises(ServerError, match="unknown relation"):
            client.query("g", "TC(X,Y) :- nosuch(X,Y).", datalog=True)
