"""Machine checks of the Theorem 4.2 containment reductions."""

import pytest

from repro.solvers import (
    CNF,
    DNF,
    ForallExistsCNF,
    forall_exists_holds,
    is_tautology_dnf,
    random_dnf,
    random_forall_exists,
)
from repro.reductions import (
    ctable_containment,
    decide_forall_exists_via_ctable,
    decide_forall_exists_via_etable,
    decide_forall_exists_via_itable,
    decide_forall_exists_via_view,
    decide_tautology_via_containment,
    etable_containment,
    itable_containment,
    tautology_containment,
    view_containment,
)

#: Small structured forall-exists instances with known answers.
FE_TRUE = ForallExistsCNF(CNF([(1, 2), (-1, -2)], num_variables=2), universal=(1,))
FE_FALSE = ForallExistsCNF(CNF([(1,)], num_variables=1), universal=(1,))
FE_NO_UNIVERSAL = ForallExistsCNF(CNF([(1, 2)], num_variables=2), universal=())
FE_TWO_CLAUSES = ForallExistsCNF(
    CNF([(1, 2, 2), (-1, 2, 2)], num_variables=2), universal=(1,)
)


class TestITableContainment:
    """Theorem 4.2(1), Figure 7: table contained in i-table."""

    def test_positive_instance(self):
        assert decide_forall_exists_via_itable(FE_TRUE)

    def test_negative_instance(self):
        assert not decide_forall_exists_via_itable(FE_FALSE)

    def test_existential_only(self):
        assert decide_forall_exists_via_itable(FE_NO_UNIVERSAL)

    def test_shared_existential(self):
        assert decide_forall_exists_via_itable(FE_TWO_CLAUSES)

    def test_construction_classification(self):
        reduction = itable_containment(FE_TRUE)
        assert reduction.db0["T"].classify() == "codd"
        assert reduction.db["T"].classify() == "i"

    def test_random(self, rng):
        for _ in range(3):
            fe = random_forall_exists(1, 1, rng.randint(1, 2), rng)
            assert decide_forall_exists_via_itable(fe) == forall_exists_holds(fe)


class TestViewContainment:
    """Theorem 4.2(2), Figure 8: table contained in a pos. exist. view."""

    def test_positive_instance(self):
        assert decide_forall_exists_via_view(FE_TRUE)

    def test_negative_instance(self):
        assert not decide_forall_exists_via_view(FE_FALSE)

    def test_construction_classification(self):
        reduction = view_containment(FE_TRUE)
        assert reduction.db0.is_codd()
        assert reduction.db.is_codd()
        assert reduction.query.is_positive_existential()

    def test_random(self, rng):
        for _ in range(3):
            fe = random_forall_exists(1, 1, rng.randint(1, 2), rng)
            assert decide_forall_exists_via_view(fe) == forall_exists_holds(fe)


class TestETableContainment:
    """Theorem 4.2(5), Figure 10: pos. exist. view contained in e-table."""

    def test_positive_instance(self):
        assert decide_forall_exists_via_etable(FE_TRUE)

    def test_negative_instance(self):
        assert not decide_forall_exists_via_etable(FE_FALSE)

    def test_construction_classification(self):
        reduction = etable_containment(FE_TRUE)
        assert reduction.db0.is_codd()
        assert reduction.db.classify() == "e"
        assert reduction.query0.is_positive_existential()

    def test_random(self, rng):
        for _ in range(3):
            fe = random_forall_exists(1, 1, rng.randint(1, 2), rng)
            assert decide_forall_exists_via_etable(fe) == forall_exists_holds(fe)


class TestCTableContainment:
    """Theorem 4.2(3): c-table contained in e-table, by folding 4.2(5)."""

    def test_positive_instance(self):
        assert decide_forall_exists_via_ctable(FE_TRUE)

    def test_negative_instance(self):
        assert not decide_forall_exists_via_ctable(FE_FALSE)

    def test_folded_lhs_is_ctable(self):
        reduction = ctable_containment(FE_TRUE)
        assert reduction.query0 is None
        assert reduction.db0.classify() == "c"


class TestConpContainment:
    """Theorem 4.2(4), Figure 9: tautology as view-in-table containment."""

    def test_tautology(self):
        assert decide_tautology_via_containment(DNF([(1,), (-1,)]))

    def test_non_tautology(self):
        assert not decide_tautology_via_containment(DNF([(1, 2)]))

    def test_construction_classification(self):
        reduction = tautology_containment(DNF([(1, 2)]))
        assert reduction.db0.is_codd()
        assert reduction.db.is_codd()
        assert reduction.query0.is_positive_existential()

    def test_random(self, rng):
        for _ in range(5):
            dnf = random_dnf(2, rng.randint(1, 3), rng, width=2)
            assert decide_tautology_via_containment(dnf) == is_tautology_dnf(dnf)
