"""Tests for repro.modal: modal views and programs (Section 6 extension)."""

import pytest

from repro import (
    Instance,
    TableDatabase,
    UCQQuery,
    atom,
    c_table,
    codd_table,
    cq,
    e_table,
    g_table,
)
from repro.core.answers import (
    certain_answers_enumerate,
    possible_answers_enumerate,
)
from repro.modal import (
    CERTAIN,
    ModalProgram,
    ModalView,
    POSSIBLE,
    certainly,
    modal_complexity,
    possibly,
)
from repro.queries.firstorder import FOQuery


def values(relation):
    """Facts as plain Python value tuples, for readable assertions."""
    return {tuple(c.value for c in fact) for fact in relation}


def patients_db() -> TableDatabase:
    """Patients with a null-valued ward: ward is 'icu' or unknown."""
    return TableDatabase.single(
        c_table(
            "Adm",
            2,
            [
                (("ann", "icu"),),
                (("bob", "?w"),),
                (("eve", "?v"), 'v != "icu"'),
            ],
        )
    )


from repro.core.terms import Constant

_Q_WARD = UCQQuery([cq(atom("InIcu", "P"), atom("Adm", "P", Constant("icu")))])


class TestModalView:
    def test_certain_identity_view(self):
        view = ModalView("Adm", CERTAIN)
        out = view.answer_set(patients_db())
        assert ("ann", "icu") in out["Adm"]
        # bob's ward is unknown: not certain with any value.
        assert all(fact[0] != "bob" for fact in out["Adm"])

    def test_possible_identity_view(self):
        view = ModalView("Adm", POSSIBLE)
        out = view.answer_set(patients_db())
        assert ("ann", "icu") in out["Adm"]
        assert ("bob", "icu") in out["Adm"]  # some world puts bob in icu
        assert ("eve", "icu") not in out["Adm"]  # condition forbids it

    def test_certain_ucq_view(self):
        view = ModalView("InIcu", CERTAIN, _Q_WARD)
        out = view.answer_set(patients_db())
        assert values(out["InIcu"]) == {("ann",)}

    def test_possible_ucq_view(self):
        view = ModalView("InIcu", POSSIBLE, _Q_WARD)
        out = view.answer_set(patients_db())
        assert values(out["InIcu"]) == {("ann",), ("bob",)}

    def test_bad_modality_rejected(self):
        with pytest.raises(ValueError, match="modality"):
            ModalView("X", "perhaps")

    def test_immutable(self):
        view = ModalView("X", POSSIBLE)
        with pytest.raises(AttributeError):
            view.name = "Y"

    def test_fo_view_falls_back_to_enumeration(self):
        # A first-order inner query is handled by world enumeration.
        q = FOQuery.difference("Adm", "Banned", 1, name="diff")
        db = TableDatabase(
            [
                codd_table("Adm", 1, [("?x",), ("a",)]),
                codd_table("Banned", 1, [("b",)]),
            ]
        )
        view = ModalView("diff", CERTAIN, q)
        expected = certain_answers_enumerate(db, q)
        got = view.answer_set(db)
        assert set(got[got.names()[0]]) == set(expected[expected.names()[0]])


class TestModalProgram:
    def test_collapse_two_views(self):
        program = ModalProgram(
            [
                ModalView("Sure", CERTAIN, _Q_WARD),
                ModalView("Maybe", POSSIBLE, _Q_WARD),
            ]
        )
        out = program.collapse(patients_db())
        assert values(out["Sure"]) == {("ann",)}
        assert values(out["Maybe"]) == {("ann",), ("bob",)}

    def test_outer_query_over_views(self):
        # "Patients possibly-but-not-certainly in the ICU": needs negation,
        # which is fine in the outer phase (complete inputs).
        outer = FOQuery.difference("Maybe", "Sure", 1, name="Unsettled")
        program = ModalProgram(
            [
                ModalView("Sure", CERTAIN, _Q_WARD),
                ModalView("Maybe", POSSIBLE, _Q_WARD),
            ],
            outer=outer,
        )
        out = program.evaluate(patients_db())
        (name,) = out.names()
        assert values(out[name]) == {("bob",)}

    def test_views_match_enumeration_ground_truth(self):
        db = patients_db()
        program = ModalProgram(
            [
                ModalView("Sure", CERTAIN, _Q_WARD),
                ModalView("Maybe", POSSIBLE, _Q_WARD),
            ]
        )
        out = program.collapse(db)
        truth_cert = certain_answers_enumerate(db, _Q_WARD)
        truth_poss = possible_answers_enumerate(db, _Q_WARD)
        assert set(out["Sure"]) == set(truth_cert["InIcu"])
        # Enumerated possible answers are per-world facts; the direct
        # algorithm restricts to the same active domain here.
        assert set(out["Maybe"]) == set(truth_poss["InIcu"])

    def test_no_views_rejected(self):
        with pytest.raises(ValueError, match="at least one view"):
            ModalProgram([])

    def test_duplicate_view_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ModalProgram([possibly(name="X"), certainly(name="X")])

    def test_multi_output_inner_query_needs_matching_name(self):
        q = UCQQuery(
            [
                cq(atom("A", "X"), atom("Adm", "X", "Y")),
                cq(atom("B", "Y"), atom("Adm", "X", "Y")),
            ]
        )
        program = ModalProgram([ModalView("C", POSSIBLE, q)])
        with pytest.raises(ValueError, match="one view per output"):
            program.collapse(patients_db())

    def test_multi_output_inner_query_matching_name_ok(self):
        q = UCQQuery(
            [
                cq(atom("A", "X"), atom("Adm", "X", "Y")),
                cq(atom("B", "Y"), atom("Adm", "X", "Y")),
            ]
        )
        program = ModalProgram([ModalView("A", POSSIBLE, q)])
        out = program.collapse(patients_db())
        assert ("ann",) in out["A"]

    def test_output_schema(self):
        program = ModalProgram([ModalView("Sure", CERTAIN, _Q_WARD)])
        schema = program.output_schema(patients_db())
        assert schema.arity("Sure") == 1

    def test_shorthands(self):
        assert possibly(_Q_WARD).modality == POSSIBLE
        assert certainly(_Q_WARD).modality == CERTAIN
        assert possibly().query is None


class TestModalComplexity:
    def test_ucq_views_on_gtable_all_ptime(self):
        db = TableDatabase.single(
            g_table("Adm", 2, [("?x", "?x"), ("a", "?y")], "y != b")
        )
        program = ModalProgram(
            [ModalView("P", POSSIBLE, _Q_WARD), ModalView("C", CERTAIN, _Q_WARD)]
        )
        regimes = modal_complexity(program, db)
        assert regimes == {"P": "ptime", "C": "ptime"}

    def test_certain_on_ctable_is_conp(self):
        program = ModalProgram([ModalView("C", CERTAIN, _Q_WARD)])
        regimes = modal_complexity(program, patients_db())
        assert regimes["C"] == "conp-per-fact"

    def test_possible_on_ctable_still_ptime_for_ucq(self):
        # Theorem 5.2(1): bounded possibility for pos. exist. q on c-tables.
        program = ModalProgram([ModalView("P", POSSIBLE, _Q_WARD)])
        regimes = modal_complexity(program, patients_db())
        assert regimes["P"] == "ptime"

    def test_fo_inner_query_is_hard_both_ways(self):
        q = FOQuery.difference("Adm", "Adm", 1, name="d")
        db = TableDatabase.single(codd_table("Adm", 1, [("?x",)]))
        program = ModalProgram(
            [ModalView("P", POSSIBLE, q), ModalView("C", CERTAIN, q)]
        )
        regimes = modal_complexity(program, db)
        assert regimes == {"P": "np-per-fact", "C": "conp-per-fact"}
