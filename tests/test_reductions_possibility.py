"""Machine checks of the Theorem 5.1 / 5.2 / 5.3 reductions."""

import pytest

from repro.reductions import (
    datalog_possibility,
    decide_colorable_via_view_possibility,
    decide_nontautology_via_fo_possibility,
    decide_sat_via_datalog,
    decide_sat_via_etable,
    decide_sat_via_itable,
    decide_tautology_via_fo_certainty,
    etable_possibility,
    fo_certainty,
    fo_possibility,
    itable_possibility,
)
from repro.solvers import (
    CNF,
    DNF,
    complete_graph,
    cycle_graph,
    dpll_satisfiable,
    example_formula_fig5,
    is_colorable,
    is_tautology_dnf,
    random_cnf,
    random_dnf,
)


def _sat(cnf):
    return dpll_satisfiable(cnf) is not None


class TestETablePossibility:
    """Theorem 5.1(2), Figure 11(b)."""

    def test_fig5(self):
        cnf, _, _ = example_formula_fig5()
        assert decide_sat_via_etable(cnf) == _sat(cnf)

    def test_unsat(self):
        assert not decide_sat_via_etable(CNF([(1,), (-1,)]))

    def test_random(self, rng):
        for _ in range(8):
            cnf = random_cnf(3, rng.randint(1, 6), rng)
            assert decide_sat_via_etable(cnf) == _sat(cnf)

    def test_construction_shape(self):
        cnf, _, _ = example_formula_fig5()
        reduction = etable_possibility(cnf)
        table = reduction.db["T"]
        assert table.classify() == "e"
        # 2 rows per variable + one per literal occurrence.
        assert len(table.rows) == 2 * 5 + 15


class TestITablePossibility:
    """Theorem 5.1(3), Figure 11(a)."""

    def test_fig5(self):
        cnf, _, _ = example_formula_fig5()
        assert decide_sat_via_itable(cnf) == _sat(cnf)

    def test_unsat(self):
        assert not decide_sat_via_itable(CNF([(1,), (-1,)]))

    def test_random(self, rng):
        for _ in range(8):
            cnf = random_cnf(3, rng.randint(1, 6), rng)
            assert decide_sat_via_itable(cnf) == _sat(cnf)

    def test_construction_shape(self):
        cnf, _, _ = example_formula_fig5()
        reduction = itable_possibility(cnf)
        table = reduction.db["T"]
        assert table.classify() == "i"
        assert len(table.rows) == 15  # one per literal occurrence


class TestViewPossibility:
    """Theorem 5.1(4): the Thm 3.1(4) construction with subset semantics."""

    @pytest.mark.parametrize(
        "graph", [complete_graph(3), cycle_graph(3), complete_graph(4)], ids=repr
    )
    def test_structured(self, graph):
        assert decide_colorable_via_view_possibility(graph) == is_colorable(graph, 3)


class TestFOPossibilityCertainty:
    """Theorems 5.2(2) and 5.3(2): fixed first order query on a Codd-table."""

    def test_tautology_certain(self):
        taut = DNF([(1,), (-1,)])
        assert decide_tautology_via_fo_certainty(taut)
        assert not decide_nontautology_via_fo_possibility(taut)

    def test_nontautology_possible(self):
        nontaut = DNF([(1, -2), (-1,)])
        assert not decide_tautology_via_fo_certainty(nontaut)
        assert decide_nontautology_via_fo_possibility(nontaut)

    def test_random(self, rng):
        for _ in range(5):
            dnf = random_dnf(2, rng.randint(1, 3), rng, width=2)
            truth = is_tautology_dnf(dnf)
            assert decide_tautology_via_fo_certainty(dnf) == truth
            assert decide_nontautology_via_fo_possibility(dnf) == (not truth)

    def test_table_is_codd(self):
        reduction = fo_certainty(DNF([(1, -2)]))
        assert reduction.db["R"].classify() == "codd"

    def test_possibility_and_certainty_complement(self):
        """The two reductions use psi and not-psi over the same table."""
        dnf = DNF([(1, 2), (-1, -2)])
        cert = fo_certainty(dnf)
        poss = fo_possibility(dnf)
        assert cert.db == poss.db


class TestDatalogPossibility:
    """Theorem 5.2(3), Figure 12: fixed Datalog query on Codd-tables."""

    def test_satisfiable(self):
        cnf = CNF([(1, 2), (-1, 2)], num_variables=2)
        assert decide_sat_via_datalog(cnf) == _sat(cnf)

    def test_unsatisfiable(self):
        assert not decide_sat_via_datalog(CNF([(1,), (-1,)]))

    def test_random(self, rng):
        for _ in range(4):
            cnf = random_cnf(2, rng.randint(1, 3), rng, width=2)
            assert decide_sat_via_datalog(cnf) == _sat(cnf)

    def test_gadget_shape(self):
        cnf = CNF([(1, 2), (-1, 2)], num_variables=2)
        reduction = datalog_possibility(cnf)
        assert reduction.db.is_codd()
        # n nulls, one per variable.
        assert len(reduction.db.variables()) == 2

    def test_goal_requires_both_chains(self):
        """With zero clauses the h-chain is empty: goal only needs the
        b-chain, which completes for any assignment."""
        cnf = CNF([], num_variables=1)
        reduction = datalog_possibility(cnf)
        assert reduction.decide_possible()
