"""Tests for the membership problem (Theorem 3.1)."""

import random

import pytest

from oracles import oracle_member
from repro.core.conditions import Conjunction, Eq, Neq
from repro.core.membership import (
    is_member,
    membership_codd,
    membership_search,
    membership_ucq_view,
    membership_view,
)
from repro.core.tables import CTable, TableDatabase, c_table, codd_table, e_table, i_table
from repro.core.terms import Variable
from repro.queries import UCQQuery, atom, cq
from repro.relational.instance import Instance, Relation
from repro.workloads import random_table, random_valuation, random_world

x, y, z = Variable("x"), Variable("y"), Variable("z")


class TestFig3Example:
    """The worked example of Figure 3 (Theorem 3.1(1))."""

    def _table(self):
        return codd_table(
            "T",
            3,
            [
                ("?x1", 1, "?x2"),
                ("?x3", 2, 3),
                (1, "?x4", "?x5"),
                (1, 2, 3),
                (1, 2, "?x6"),
            ],
        )

    def test_fig3_instance_is_member(self):
        instance = Instance({"T": [(1, 1, 2), (3, 2, 3), (1, 4, 5), (1, 2, 3)]})
        assert membership_codd(instance, TableDatabase.single(self._table()))

    def test_fig3_dropping_a_fact_fails(self):
        # Row (1, 2, 3) of T must map somewhere; removing facts breaks the
        # saturating matching or row coverage.
        instance = Instance({"T": [(1, 1, 2), (3, 2, 3)]})
        assert not membership_codd(instance, TableDatabase.single(self._table()))


class TestMatchingAlgorithm:
    def test_every_row_must_unify_step_c(self):
        table = codd_table("T", 2, [(1, x), (2, y)])
        instance = Instance({"T": [(1, 5)]})
        # Row (2, y) cannot map into the instance.
        assert not membership_codd(instance, TableDatabase.single(table))

    def test_more_facts_than_rows_fails(self):
        table = codd_table("T", 1, [(x,)])
        instance = Instance({"T": [(1,), (2,)]})
        assert not membership_codd(instance, TableDatabase.single(table))

    def test_two_rows_one_fact(self):
        table = codd_table("T", 1, [(x,), (y,)])
        assert membership_codd(
            Instance({"T": [(7,)]}), TableDatabase.single(table)
        )

    def test_empty_instance_vs_rows(self):
        table = codd_table("T", 1, [(x,)])
        inst = Instance({"T": Relation(1)})
        assert not membership_codd(inst, TableDatabase.single(table))
        empty_table = codd_table("T", 1, [])
        assert membership_codd(inst, TableDatabase.single(empty_table))

    def test_requires_codd(self):
        table = e_table("T", 2, [(x, x)])
        with pytest.raises(ValueError):
            membership_codd(Instance({"T": [(1, 1)]}), TableDatabase.single(table))

    def test_matching_agrees_with_search_and_oracle(self, rng):
        for _ in range(25):
            table = random_table(rng, "codd", rows=3, arity=2, num_constants=3)
            db = TableDatabase.single(table)
            candidate = (
                random_world(rng, db)
                if rng.random() < 0.7
                else Instance({"T": random_world(rng, db)["R"]})
            )
            if set(candidate.names()) != set(db.names()):
                candidate = random_world(rng, db)
            expected = oracle_member(candidate, db)
            assert membership_codd(candidate, db) == expected
            assert membership_search(candidate, db) == expected


class TestSearchOnConditionedTables:
    def test_etable_repeated_variable_consistency(self):
        table = e_table("T", 2, [(x, 1), (2, x)])
        db = TableDatabase.single(table)
        assert is_member(Instance({"T": [(5, 1), (2, 5)]}), db)
        assert not is_member(Instance({"T": [(5, 1), (2, 6)]}), db)

    def test_itable_inequality_enforced(self):
        table = i_table("T", 1, [(x,), (y,)], "x != y")
        db = TableDatabase.single(table)
        assert not is_member(Instance({"T": [(3,)]}), db)
        assert is_member(Instance({"T": [(3,), (4,)]}), db)

    def test_gtable_mixed(self):
        table = CTable("T", 2, [(x, y)], Conjunction([Eq(x, 1), Neq(y, 2)]))
        db = TableDatabase.single(table)
        assert is_member(Instance({"T": [(1, 3)]}), db)
        assert not is_member(Instance({"T": [(1, 2)]}), db)
        assert not is_member(Instance({"T": [(2, 3)]}), db)

    def test_ctable_row_suppression(self):
        table = c_table("T", 1, [((1,),), ((2,), "x = 0")])
        db = TableDatabase.single(table)
        assert is_member(Instance({"T": [(1,)]}), db)  # drop row 2 (x != 0)
        assert is_member(Instance({"T": [(1,), (2,)]}), db)

    def test_unconditioned_row_cannot_be_dropped(self):
        table = c_table("T", 1, [((1,),), ((2,),)])
        db = TableDatabase.single(table)
        assert not is_member(Instance({"T": [(1,)]}), db)

    def test_condition_variable_not_in_matrix(self):
        # Local conditions may use variables outside the table.
        table = c_table("T", 1, [((1,), "u = 0"), ((2,), "u != 0")])
        db = TableDatabase.single(table)
        # u = 0 gives {1}; u != 0 gives {2}; never both.
        assert is_member(Instance({"T": [(1,)]}), db)
        assert is_member(Instance({"T": [(2,)]}), db)
        assert not is_member(Instance({"T": [(1,), (2,)]}), db)

    def test_unsatisfiable_global_rejects_all(self):
        table = CTable("T", 1, [(1,)], Conjunction([Eq(x, 1), Neq(x, 1)]))
        assert not is_member(
            Instance({"T": [(1,)]}), TableDatabase.single(table)
        )

    def test_relation_name_mismatch(self):
        table = codd_table("T", 1, [(1,)])
        assert not is_member(
            Instance({"S": [(1,)]}), TableDatabase.single(table)
        )

    def test_search_agrees_with_oracle_random(self, rng):
        for kind in ("e", "i", "g", "c"):
            for _ in range(12):
                table = random_table(rng, kind, rows=3, num_constants=3)
                db = TableDatabase.single(table)
                candidate = random_world(rng, db)
                assert is_member(candidate, db) == oracle_member(candidate, db)

    def test_search_rejects_non_members_random(self, rng):
        for _ in range(15):
            table = random_table(rng, "g", rows=3, num_constants=3)
            db = TableDatabase.single(table)
            world = random_world(rng, db)
            # Perturb: add an alien fact.
            alien = Instance(
                {"R": Relation(world["R"].arity, list(world["R"].facts) + [(9, 9)[: world["R"].arity]])}
            )
            assert is_member(alien, db) == oracle_member(alien, db)


class TestViewMembership:
    def _setup(self):
        table = CTable("R", 2, [(1, x), (2, y)])
        q = UCQQuery([cq(atom("Q", "A"), atom("R", "A", "B"))])
        return TableDatabase.single(table), q

    def test_ucq_view_member(self):
        db, q = self._setup()
        assert is_member(Instance({"Q": [(1,), (2,)]}), db, q)
        assert not is_member(Instance({"Q": [(1,)]}), db, q)

    def test_ucq_view_agrees_with_enumeration(self):
        db, q = self._setup()
        for candidate in (
            Instance({"Q": [(1,), (2,)]}),
            Instance({"Q": [(1,)]}),
            Instance({"Q": [(3,)]}),
        ):
            assert membership_ucq_view(candidate, db, q) == membership_view(
                candidate, db, q
            )

    def test_projection_view_collapses(self):
        table = CTable("R", 2, [(x, 1), (y, 2)])
        q = UCQQuery([cq(atom("Q", "A"), atom("R", "A", "B"))])
        db = TableDatabase.single(table)
        # x = y makes a single answer possible.
        assert is_member(Instance({"Q": [(5,)]}), db, q)

    def test_forced_methods(self):
        db, q = self._setup()
        inst = Instance({"Q": [(1,), (2,)]})
        assert is_member(inst, db, q, method="enumerate")
        with pytest.raises(ValueError):
            is_member(inst, db, q, method="matching")
        with pytest.raises(ValueError):
            is_member(inst, db, q, method="bogus")
