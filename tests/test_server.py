"""Tests for repro.server: sessions, the registry, the HTTP API, the client.

The concurrency-specific tests (stress, lock discipline, snapshot
isolation under contention) live in ``tests/test_concurrency.py``; this
file covers the serving layer's *functional* contract — versioned
snapshots, update semantics, view handling, sidecar round trips and the
HTTP surface — mostly single-threaded so failures localize well.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.core.tables import TableDatabase, c_table, codd_table
from repro.core.terms import Constant
from repro.io.jsonio import database_to_json, table_from_json
from repro.io.text import dumps_database
from repro.server import (
    DatabaseSession,
    ServerClient,
    ServerError,
    SessionError,
    SessionRegistry,
    load_database_file,
    make_server,
    start_in_thread,
)


def graph_db(*edges):
    return TableDatabase.single(codd_table("R", 2, list(edges)))


def row_values(table):
    """The ground rows of a table as a set of value tuples."""
    return {tuple(t.value for t in row.terms) for row in table.rows}


PATH_QUERY = "Q(X, Z) :- R(X, Y), R(Y, Z)."


# ---------------------------------------------------------------------------
# DatabaseSession
# ---------------------------------------------------------------------------


class TestDatabaseSession:
    def test_query_answers_at_version_zero(self):
        session = DatabaseSession("g", graph_db(("a", "b"), ("b", "c")))
        result = session.query(PATH_QUERY)
        assert result.version == 0
        assert row_values(result.table) == {("a", "c")}
        assert result.answered_by_view is None

    def test_apply_bumps_version_and_new_queries_see_it(self):
        session = DatabaseSession("g", graph_db(("a", "b"), ("b", "c")))
        version = session.apply([("insert", "R", ("c", "d"))])
        assert version == 1
        result = session.query(PATH_QUERY)
        assert result.version == 1
        assert row_values(result.table) == {("a", "c"), ("b", "d")}

    def test_old_snapshot_is_pinned_across_updates(self):
        session = DatabaseSession("g", graph_db(("a", "b"), ("b", "c")))
        old = session.snapshot()
        session.apply([("insert", "R", ("c", "d"))])
        # The old snapshot still holds the version-0 database unchanged.
        assert old.version == 0
        assert row_values(old.db["R"]) == {("a", "b"), ("b", "c")}
        assert session.snapshot().version == 1

    def test_batch_applies_one_version_per_op(self):
        session = DatabaseSession("g", graph_db(("a", "b")))
        version = session.apply(
            [
                ("insert", "R", ("b", "c")),
                ("insert", "R", ("c", "d")),
                ("delete", "R", ("a", "b")),
            ]
        )
        assert version == 3
        assert row_values(session.snapshot().db["R"]) == {("b", "c"), ("c", "d")}

    def test_modify_op(self):
        session = DatabaseSession("g", graph_db(("a", "b")))
        session.apply([("modify", "R", ("a", "b"), ("a", "z"))])
        assert row_values(session.snapshot().db["R"]) == {("a", "z")}

    def test_bad_op_shapes_are_rejected_before_any_state_change(self):
        session = DatabaseSession("g", graph_db(("a", "b")))
        for bad in (
            ("upsert", "R", ("a", "b")),          # unknown kind
            ("insert", "R"),                        # missing fact
            ("insert", "R", ("a", "b"), ("c",)),  # too many args
            ("modify", "R", ("a", "b")),           # modify wants old and new
            ("insert", "R", "ab"),                 # fact not a sequence
            "insert",                                # not an op at all
        ):
            with pytest.raises(SessionError):
                session.apply([("insert", "R", ("x", "y")), bad])
            # Validation happens before application: nothing was applied.
            assert session.version == 0

    def test_unknown_relation_fails_after_earlier_ops_published(self):
        # Batches are a convenience, not a transaction (documented): the
        # shape-valid prefix lands, the failing op raises.
        session = DatabaseSession("g", graph_db(("a", "b")))
        with pytest.raises(SessionError, match="unknown relation"):
            session.apply(
                [("insert", "R", ("b", "c")), ("insert", "Nope", ("x", "y"))]
            )
        assert session.version == 1
        assert row_values(session.snapshot().db["R"]) == {("a", "b"), ("b", "c")}

    def test_bad_query_raises_session_error(self):
        session = DatabaseSession("g", graph_db(("a", "b")))
        with pytest.raises(SessionError, match="query"):
            session.query("garbage((")
        with pytest.raises(SessionError, match="unknown relation"):
            session.query("Q(X) :- Missing(X, Y).")

    def test_naive_and_ordered_agree(self):
        session = DatabaseSession(
            "g", graph_db(("a", "b"), ("b", "c"), ("c", "d"), ("b", "d"))
        )
        planned = session.query(PATH_QUERY)
        naive = session.query(PATH_QUERY, naive=True)
        greedy = session.query(PATH_QUERY, ordering="greedy")
        assert row_values(planned.table) == row_values(naive.table)
        assert row_values(planned.table) == row_values(greedy.table)

    def test_explain_lines_present(self):
        session = DatabaseSession("g", graph_db(("a", "b"), ("b", "c")))
        result = session.query(PATH_QUERY, explain=True)
        assert isinstance(result.explain, list)

    def test_non_ground_database_is_served_too(self):
        table = c_table("R", 2, [(("a", "?x"),), ((("?x", "c")), "?x != b")])
        session = DatabaseSession("g", TableDatabase.single(table))
        result = session.query(PATH_QUERY)
        assert result.table.arity == 2

    def test_info_shape(self):
        session = DatabaseSession("g", graph_db(("a", "b")))
        info = session.info()
        assert info["name"] == "g"
        assert info["version"] == 0
        assert info["tables"] == [{"name": "R", "arity": 2, "rows": 1}]
        assert info["views"] == []
        # info() is JSON-ready by contract.
        json.dumps(info)


class TestSessionViews:
    def test_define_view_and_answer_from_it(self):
        session = DatabaseSession("g", graph_db(("a", "b"), ("b", "c")))
        table = session.define_view("V(X, Z) :- R(X, Y), R(Y, Z).")
        assert row_values(table) == {("a", "c")}
        result = session.query("W(X, Z) :- R(X, Y), R(Y, Z).", use_views=True)
        assert result.answered_by_view == "V"
        assert result.table.name == "W"
        assert row_values(result.table) == {("a", "c")}

    def test_views_are_maintained_through_updates(self):
        session = DatabaseSession("g", graph_db(("a", "b"), ("b", "c")))
        session.define_view("V(X, Z) :- R(X, Y), R(Y, Z).")
        session.apply([("insert", "R", ("c", "d"))])
        result = session.query("W(X, Z) :- R(X, Y), R(Y, Z).", use_views=True)
        assert result.answered_by_view == "V"
        assert row_values(result.table) == {("a", "c"), ("b", "d")}

    def test_snapshot_view_cut_is_pinned(self):
        session = DatabaseSession("g", graph_db(("a", "b"), ("b", "c")))
        session.define_view("V(X, Z) :- R(X, Y), R(Y, Z).")
        old = session.snapshot()
        session.apply([("insert", "R", ("c", "d"))])
        assert row_values(old.view_table("V")) == {("a", "c")}
        assert row_values(session.snapshot().view_table("V")) == {
            ("a", "c"),
            ("b", "d"),
        }

    def test_drop_view(self):
        session = DatabaseSession("g", graph_db(("a", "b"), ("b", "c")))
        session.define_view("V(X, Z) :- R(X, Y), R(Y, Z).")
        session.drop_view("V")
        result = session.query("W(X, Z) :- R(X, Y), R(Y, Z).", use_views=True)
        assert result.answered_by_view is None
        with pytest.raises(SessionError):
            session.drop_view("V")

    def test_use_views_without_a_match_evaluates_from_base(self):
        session = DatabaseSession("g", graph_db(("a", "b"), ("b", "c")))
        session.define_view("V(X, Z) :- R(X, Y), R(Y, Z).")
        result = session.query("W(X) :- R(X, Y).", use_views=True)
        assert result.answered_by_view is None
        assert row_values(result.table) == {("a",), ("b",)}


class TestSessionPersistence:
    def make_file(self, tmp_path, text=True):
        db = graph_db(("a", "b"), ("b", "c"))
        path = tmp_path / ("db.pwt" if text else "db.json")
        if text:
            path.write_text(dumps_database(db), encoding="utf-8")
        else:
            path.write_text(json.dumps(database_to_json(db)), encoding="utf-8")
        return str(path)

    def test_persist_requires_file_backing(self):
        session = DatabaseSession("g", graph_db(("a", "b")))
        with pytest.raises(SessionError, match="not file-backed"):
            session.persist()

    @pytest.mark.parametrize("text", [True, False], ids=["text", "json"])
    def test_persist_round_trips_in_original_notation(self, tmp_path, text):
        registry = SessionRegistry()
        path = self.make_file(tmp_path, text=text)
        session, stale = registry.open_file("g", path)
        assert stale == ()
        session.apply([("insert", "R", ("c", "d"))])
        session.define_view("V(X, Z) :- R(X, Y), R(Y, Z).")
        assert session.persist() == path

        # A fresh process (registry) sees the served state, views fresh.
        other = SessionRegistry()
        reloaded, stale = other.open_file("g2", path)
        assert stale == ()
        assert row_values(reloaded.snapshot().db["R"]) == {
            ("a", "b"),
            ("b", "c"),
            ("c", "d"),
        }
        result = reloaded.query("W(X, Z) :- R(X, Y), R(Y, Z).", use_views=True)
        assert result.answered_by_view == "V"

    def test_stale_sidecar_is_an_explicit_error(self, tmp_path):
        registry = SessionRegistry()
        path = self.make_file(tmp_path)
        session, _ = registry.open_file("g", path)
        session.define_view("V(X, Z) :- R(X, Y), R(Y, Z).")
        session.persist()
        # The database file changes behind the sidecar's back.
        with open(path, "a", encoding="utf-8") as fp:
            fp.write('"c" "d"\n')
        with pytest.raises(SessionError, match="digest mismatch"):
            SessionRegistry().open_file("g", path)

    def test_stale_sidecar_refresh_policy_rematerializes(self, tmp_path):
        registry = SessionRegistry()
        path = self.make_file(tmp_path)
        session, _ = registry.open_file("g", path)
        session.define_view("V(X, Z) :- R(X, Y), R(Y, Z).")
        session.persist()
        with open(path, "a", encoding="utf-8") as fp:
            fp.write('"c" "d"\n')
        reloaded, stale = SessionRegistry().open_file("g", path, on_stale="refresh")
        assert stale == ("V",)
        # Re-materialized over the *current* file, not the stale table.
        assert row_values(reloaded.snapshot().view_table("V")) == {
            ("a", "c"),
            ("b", "d"),
        }
        skipped, stale = SessionRegistry().open_file("g2", path, on_stale="skip")
        assert stale == ("V",)
        assert skipped.info()["views"] == []


class TestSessionRegistry:
    def test_add_get_drop(self):
        registry = SessionRegistry()
        registry.add("a", graph_db(("a", "b")))
        assert "a" in registry
        assert registry.names() == ("a",)
        assert registry.get("a").name == "a"
        registry.drop("a")
        assert len(registry) == 0

    def test_duplicate_and_missing_names(self):
        registry = SessionRegistry()
        registry.add("a", graph_db(("a", "b")))
        with pytest.raises(SessionError, match="already exists"):
            registry.add("a", graph_db(("x", "y")))
        with pytest.raises(SessionError, match="no database named"):
            registry.get("b")
        with pytest.raises(SessionError, match="no database named"):
            registry.drop("b")

    def test_load_database_file_autodetects(self, tmp_path):
        db = graph_db(("a", "b"))
        text_path = tmp_path / "db.pwt"
        text_path.write_text(dumps_database(db), encoding="utf-8")
        json_path = tmp_path / "db.json"
        json_path.write_text(json.dumps(database_to_json(db)), encoding="utf-8")
        loaded, fmt = load_database_file(str(text_path))
        assert fmt == "text" and row_values(loaded["R"]) == {("a", "b")}
        loaded, fmt = load_database_file(str(json_path))
        assert fmt == "json" and row_values(loaded["R"]) == {("a", "b")}
        with pytest.raises(SessionError, match="cannot read"):
            load_database_file(str(tmp_path / "missing.pwt"))


# ---------------------------------------------------------------------------
# The HTTP API and its client
# ---------------------------------------------------------------------------


@pytest.fixture
def server_client():
    server = make_server(port=0)
    start_in_thread(server)
    host, port = server.server_address[:2]
    client = ServerClient(f"http://{host}:{port}")
    try:
        yield server, client
    finally:
        server.shutdown()
        server.server_close()


def create_graph(client, name="g", *extra_edges):
    edges = [("a", "b"), ("b", "c"), *extra_edges]
    return client.create_database(name, database_to_json(graph_db(*edges)))


class TestHttpApi:
    def test_health_and_listing(self, server_client):
        _, client = server_client
        assert client.health() == {"ok": True, "databases": 0}
        create_graph(client)
        listing = client.databases()
        assert listing == [{"name": "g", "version": 0, "tables": 1, "views": 0}]

    def test_create_conflict_is_409(self, server_client):
        _, client = server_client
        create_graph(client)
        with pytest.raises(ServerError) as excinfo:
            create_graph(client)
        assert excinfo.value.status == 409

    def test_missing_database_is_404(self, server_client):
        _, client = server_client
        with pytest.raises(ServerError) as excinfo:
            client.query("nope", PATH_QUERY)
        assert excinfo.value.status == 404

    def test_query_update_roundtrip(self, server_client):
        _, client = server_client
        create_graph(client)
        response = client.query("g", PATH_QUERY)
        assert response["version"] == 0
        assert response["rows"] == 1
        assert row_values(table_from_json(response["table"])) == {("a", "c")}

        applied = client.update("g", ["insert", "R", ["c", "d"]])
        assert applied == {"version": 1, "applied": 1}
        response = client.query("g", PATH_QUERY)
        assert response["version"] == 1
        assert row_values(table_from_json(response["table"])) == {
            ("a", "c"),
            ("b", "d"),
        }

    def test_update_batch_and_bad_ops(self, server_client):
        _, client = server_client
        create_graph(client)
        applied = client.update(
            "g", ["insert", "R", ["c", "d"]], ["delete", "R", ["a", "b"]]
        )
        assert applied == {"version": 2, "applied": 2}
        with pytest.raises(ServerError) as excinfo:
            client.update("g", ["upsert", "R", ["a", "b"]])
        assert excinfo.value.status == 400

    def test_views_over_http(self, server_client):
        _, client = server_client
        create_graph(client)
        defined = client.define_view("g", "V(X, Z) :- R(X, Y), R(Y, Z).")
        assert defined["name"] == "V" and defined["rows"] == 1
        response = client.query("g", "W(X, Z) :- R(X, Y), R(Y, Z).", use_views=True)
        assert response["answered_by_view"] == "V"
        assert [v["name"] for v in client.views("g")] == ["V"]
        client.drop_view("g", "V")
        assert client.views("g") == []

    def test_explain_and_snapshot_download(self, server_client):
        _, client = server_client
        create_graph(client)
        response = client.query("g", PATH_QUERY, explain=True, ordering="greedy")
        assert "explain" in response
        snap = client.snapshot("g")
        assert snap["version"] == 0
        assert [t["name"] for t in snap["database"]["tables"]] == ["R"]

    def test_persist_without_file_backing_is_400(self, server_client):
        _, client = server_client
        create_graph(client)
        with pytest.raises(ServerError) as excinfo:
            client.persist("g")
        assert excinfo.value.status == 400

    def test_drop_database(self, server_client):
        _, client = server_client
        create_graph(client)
        assert client.drop_database("g") == {"dropped": "g"}
        assert client.health()["databases"] == 0

    def test_bad_route_and_bad_json(self, server_client):
        _, client = server_client
        with pytest.raises(ServerError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404
        with pytest.raises(ServerError) as excinfo:
            client._request("PUT", "/health")
        assert excinfo.value.status in (405, 501)
        import urllib.request

        req = urllib.request.Request(
            client.base_url + "/dbs/g/query",
            data=b"not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req)
        assert excinfo.value.code == 400

    def test_unreachable_server(self):
        client = ServerClient("http://127.0.0.1:9", timeout=0.5)
        with pytest.raises(ServerError, match="cannot reach"):
            client.health()

    def test_served_by_field(self, server_client):
        _, client = server_client
        create_graph(client)
        first = client.query("g", PATH_QUERY)
        assert first["served_by"] == "inline"
        second = client.query("g", PATH_QUERY)
        assert second["served_by"] == "cache"
        assert second["table"] == first["table"]

    def test_stats_endpoint(self, server_client):
        _, client = server_client
        create_graph(client)
        client.query("g", PATH_QUERY)
        client.query("g", PATH_QUERY)
        stats = client.stats()
        assert set(stats) == {
            "queries",
            "cache",
            "pool",
            "latency",
            "slow_queries",
            "databases",
            "conditions",
        }
        assert stats["queries"]["queries"] == 2
        assert stats["cache"]["hits"] == 1
        assert stats["cache"]["misses"] == 1
        assert stats["pool"]["enabled"] is False
        assert stats["latency"]["count"] == 2
        assert stats["latency"]["p99_ms"] >= stats["latency"]["p50_ms"] >= 0.0

    def test_large_responses_are_chunked(self, server_client):
        from repro.server.app import CHUNK_THRESHOLD

        _, client = server_client
        rows = [(f"left-{i:06d}", f"right-{i:06d}") for i in range(3000)]
        client.create_database("big", database_to_json(graph_db(*rows)))
        import urllib.request

        with urllib.request.urlopen(client.base_url + "/dbs/big/database") as resp:
            assert resp.headers.get("Transfer-Encoding") == "chunked"
            assert resp.headers.get("Content-Length") is None
            body = resp.read()
        assert len(body) > CHUNK_THRESHOLD
        payload = json.loads(body)
        assert len(payload["database"]["tables"][0]["rows"]) == 3000
        # The client decodes the same framing transparently.
        snap = client.snapshot("big")
        assert len(snap["database"]["tables"][0]["rows"]) == 3000

    def test_body_fed_in_two_writes_is_read_whole(self, server_client):
        """Regression: a request body arriving in several packets used to
        be truncated by a single ``rfile.read(length)`` short read; the
        handler must loop until Content-Length bytes arrive."""
        import socket

        server, client = server_client
        create_graph(client)
        body = json.dumps({"query": PATH_QUERY}).encode("utf-8")
        split = len(body) // 2
        host, port = server.server_address[:2]
        with socket.create_connection((host, port), timeout=10.0) as sock:
            # TCP_NODELAY so each sendall goes out as its own segment
            # instead of coalescing in the kernel.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            header = (
                b"POST /dbs/g/query HTTP/1.1\r\n"
                b"Host: test\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: %d\r\n"
                b"Connection: close\r\n\r\n" % len(body)
            )
            sock.sendall(header + body[:split])
            threading.Event().wait(0.2)  # let the server's read run dry
            sock.sendall(body[split:])
            response = b""
            while True:
                piece = sock.recv(65536)
                if not piece:
                    break
                response += piece
        status = response.split(b"\r\n", 1)[0]
        assert b"200" in status, response[:200]
        payload = json.loads(response.split(b"\r\n\r\n", 1)[1])
        assert row_values(table_from_json(payload["table"])) == {("a", "c")}

    def test_many_clients_share_one_server(self, server_client):
        # A light concurrency smoke (the real stress lives in
        # test_concurrency.py): parallel creates and queries all land.
        _, client = server_client
        create_graph(client)
        errors = []

        def reader():
            try:
                for _ in range(5):
                    response = client.query("g", PATH_QUERY)
                    assert response["rows"] >= 1
            except Exception as exc:  # pragma: no cover - fails the test
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []


class TestHttpWithWorkerPool:
    """The HTTP surface with the multi-process read pool enabled."""

    @pytest.fixture
    def pooled(self):
        server = make_server(port=0, workers=1)
        start_in_thread(server)
        host, port = server.server_address[:2]
        client = ServerClient(f"http://{host}:{port}")
        try:
            yield server, client
        finally:
            server.shutdown()
            server.server_close()

    def test_pool_serves_http_queries(self, pooled):
        server, client = pooled
        create_graph(client)
        response = client.query("g", PATH_QUERY)
        assert response["served_by"] == "pool"
        assert row_values(table_from_json(response["table"])) == {("a", "c")}

        client.update("g", ["insert", "R", ["c", "d"]])
        response = client.query("g", PATH_QUERY)
        assert response["served_by"] == "pool"
        assert response["version"] == 1
        assert row_values(table_from_json(response["table"])) == {
            ("a", "c"),
            ("b", "d"),
        }
        stats = client.stats()
        assert stats["pool"]["enabled"] is True
        assert stats["pool"]["alive"] == 1
        assert stats["pool"]["full_ships"] == 1
        assert stats["pool"]["delta_ships"] == 1

    def test_worker_errors_surface_as_http_errors(self, pooled):
        _, client = pooled
        create_graph(client)
        with pytest.raises(ServerError) as excinfo:
            client.query("g", "Q(X) :- Missing(X, Y).")
        assert excinfo.value.status == 400

    def test_server_close_stops_the_pool(self):
        server = make_server(port=0, workers=1)
        start_in_thread(server)
        pool = server.dispatcher.pool
        assert pool.alive_workers() == 1
        server.shutdown()
        server.server_close()
        for slot in pool._slots:
            slot.process.join(timeout=5.0)
        assert pool.alive_workers() == 0
