"""Concurrency tests: shared-mutable-state regressions and snapshot isolation.

Three families:

* hammer tests for the module-level LRU condition caches
  (``repro.core.conditions``), which used to be bare dicts with a
  check-then-act eviction race;
* a regression test pinning the *invalidate → rebind* critical section
  of :class:`~repro.relational.stats.StatsStore` (a reader snapshotting
  between the two used to recollect the touched table from the outgoing
  database and poison the cache);
* reader/writer stress over :class:`~repro.server.session.DatabaseSession`
  asserting the snapshot-isolation invariant — every response equals
  evaluating the query against the database produced by the
  update-stream prefix of length ``response.version`` — with no
  mid-mutation exceptions, for ground workloads (row-set equality) and
  a non-ground c-table workload (``strong_canonicalize`` world-set
  equality).

The thread counts and iteration counts are sized for CI: enough to make
the old races fail reliably (verified against the unlocked
implementations), small enough to finish in seconds.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.core.conditions import (
    _LRUCache,
    conjoin,
    intern_conjunction,
    parse_conjunction,
)
from repro.core.tables import CTable, TableDatabase, c_table, codd_table
from repro.core.worlds import enumerate_worlds, strong_canonicalize
from repro.ctalgebra.evaluate import evaluate_ct
from repro.extensions.updates import insert_fact
from repro.relational.parser import parse_query
from repro.relational.planner import ra_of_ucq
from repro.relational.stats import StatsStore
from repro.server import DatabaseSession


def run_threads(workers, timeout=60.0):
    """Run the worker callables to completion, re-raising their errors."""
    errors = []

    def wrap(fn):
        try:
            fn()
        except Exception as exc:
            errors.append(exc)

    threads = [threading.Thread(target=wrap, args=(fn,)) for fn in workers]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout)
        assert not t.is_alive(), "worker thread hung (deadlock?)"
    if errors:
        raise errors[0]


def row_values(table):
    return {tuple(t.value for t in row.terms) for row in table.rows}


# ---------------------------------------------------------------------------
# The condition caches
# ---------------------------------------------------------------------------


class TestLRUCacheHammer:
    def test_concurrent_put_get_evict(self):
        # Small limit so every thread constantly crosses the eviction
        # path; the old dict-based cache raised KeyError/RuntimeError
        # here (concurrent del of the same key, dict resize mid-iteration).
        cache = _LRUCache(limit=32)

        def worker(seed):
            rng = random.Random(seed)

            def go():
                for i in range(3000):
                    key = rng.randrange(100)
                    if rng.random() < 0.5:
                        cache.put(key, key * 2)
                    else:
                        value = cache.get(key)
                        assert value is None or value == key * 2
                    if i % 500 == 0:
                        assert len(cache) <= 32

            return go

        run_threads([worker(s) for s in range(8)])
        assert len(cache) <= 32

    def test_concurrent_clear_is_safe(self):
        cache = _LRUCache(limit=64)
        stop = threading.Event()

        def putter():
            i = 0
            while not stop.is_set():
                cache.put(i % 200, i)
                cache.get((i * 7) % 200)
                i += 1

        def clearer():
            for _ in range(50):
                cache.clear()
                time.sleep(0.001)
            stop.set()

        run_threads([putter, putter, clearer])
        assert len(cache) <= 64

    def test_public_condition_api_under_contention(self):
        # The real module-level caches, through their public entry
        # points: interning, conjunction, satisfiability.  Any torn
        # cache state surfaces as an exception or a wrong verdict.
        conjunctions = [
            parse_conjunction(text)
            for text in (
                "?x = ?y",
                "?x != ?y",
                "?x = a, ?y != b",
                "?x = ?y, ?y = ?z",
                "?x != a, ?x != b, ?x != c",
                "?u = v, ?w != v",
            )
        ]

        def worker(seed):
            rng = random.Random(seed)

            def go():
                for _ in range(400):
                    a = rng.choice(conjunctions)
                    b = rng.choice(conjunctions)
                    merged = conjoin(a, b)
                    assert intern_conjunction(merged).atoms == merged.atoms
                    # Satisfiability must be deterministic under contention.
                    assert merged.is_satisfiable() == merged.is_satisfiable()

            return go

        run_threads([worker(s) for s in range(6)])


# ---------------------------------------------------------------------------
# StatsStore: invalidate → rebind is one critical section
# ---------------------------------------------------------------------------


class TestStatsAtomicity:
    def test_snapshot_cannot_interleave_invalidate_and_rebind(self, monkeypatch):
        """A reader snapshotting during an update must see the update
        fully applied, never the invalidated-but-not-rebound limbo.

        We widen the race window by making ``invalidate`` linger: the
        update path holds the store lock across *invalidate → rebind*
        (see ``repro.extensions.updates._replace``), so the concurrent
        snapshot must block and then observe the new version.  Without
        the critical section the snapshot runs in the window, recollects
        the touched table from the *outgoing* database (2 rows) and
        poisons the cache with statistics for a version that no longer
        exists.
        """
        db = TableDatabase.single(codd_table("R", 2, [("a", "b"), ("b", "c")]))
        store = StatsStore(db)
        store.snapshot()  # warm the cache
        invalidated = threading.Event()

        original = StatsStore.invalidate

        def lingering_invalidate(self, *names):
            original(self, *names)
            invalidated.set()
            time.sleep(0.25)  # hold the race window open (lock still held)

        monkeypatch.setattr(StatsStore, "invalidate", lingering_invalidate)

        observed = {}

        def writer():
            insert_fact(db, "R", ("c", "d"), stats=store)

        def reader():
            assert invalidated.wait(5.0)
            observed["rows"] = store.snapshot().get("R").rows

        run_threads([writer, reader])
        assert observed["rows"] == 3.0

    def test_store_survives_concurrent_snapshots_and_updates(self):
        db = TableDatabase.single(
            codd_table("R", 2, [(f"a{i}", f"b{i}") for i in range(10)])
        )
        store = StatsStore(db)
        state = {"db": db}
        stop = threading.Event()

        def writer():
            current = state["db"]
            for i in range(40):
                current = insert_fact(current, "R", (f"c{i}", f"d{i}"), stats=store)
                state["db"] = current
            stop.set()

        def reader():
            while not stop.is_set():
                stats = store.snapshot()
                table = stats.get("R")
                if table is not None:
                    # Whatever version we hit, its stats are internally
                    # consistent: a whole-table collection, never torn.
                    assert 10.0 <= table.rows <= 50.0
                    assert len(table.columns) == 2

        run_threads([writer, reader, reader, reader])


# ---------------------------------------------------------------------------
# Snapshot isolation under reader/writer stress
# ---------------------------------------------------------------------------


PATH_QUERY = "Q(X, Z) :- R(X, Y), R(Y, Z)."


class TestSnapshotIsolationStress:
    def test_ground_stress_every_answer_matches_a_prefix(self):
        """Randomized update stream vs concurrent readers.

        The writer applies ops one at a time, recording the database
        each version corresponds to.  Readers query concurrently and
        record ``(version, answer)`` pairs.  Afterwards every recorded
        answer must equal the naive evaluation of the query against the
        recorded database of exactly that version — i.e. against a
        *prefix* of the update stream, never a half-applied op.
        """
        rng = random.Random(0xAB17)
        edges = [(f"n{rng.randrange(8)}", f"n{rng.randrange(8)}") for _ in range(12)]
        session = DatabaseSession("g", TableDatabase.single(codd_table("R", 2, set(edges))))
        dbs = {0: session.snapshot().db}
        observations = []
        obs_lock = threading.Lock()

        def writer():
            present = set(row_values(session.snapshot().db["R"]))
            for _ in range(50):
                if present and rng.random() < 0.4:
                    fact = rng.choice(sorted(present))
                    present.discard(fact)
                    op = ("delete", "R", fact)
                else:
                    fact = (f"n{rng.randrange(8)}", f"n{rng.randrange(8)}")
                    present.add(fact)
                    op = ("insert", "R", fact)
                version = session.apply([op])
                dbs[version] = session.snapshot().db

        def reader(use_views=False):
            def go():
                for _ in range(40):
                    result = session.query(PATH_QUERY, use_views=use_views)
                    with obs_lock:
                        observations.append((result.version, row_values(result.table)))

            return go

        run_threads([writer, reader(), reader(), reader(True)])

        expression = ra_of_ucq(parse_query(PATH_QUERY))
        assert observations, "readers never ran"
        checked = {}
        for version, answer in observations:
            assert version in dbs, f"answer at unpublished version {version}"
            if version not in checked:
                reference = evaluate_ct(expression, dbs[version], name="Q")
                checked[version] = row_values(reference)
            assert answer == checked[version], (
                f"answer at version {version} matches no prefix of the "
                f"update stream"
            )

    def test_ground_stress_with_view_maintenance(self):
        """Same invariant while the writer also defines/drops views and
        readers answer through them: a view answer must agree with base
        evaluation at the *same* version (the snapshot's view cut and
        database advance together or not at all)."""
        session = DatabaseSession(
            "g",
            TableDatabase.single(
                codd_table("R", 2, [("a", "b"), ("b", "c"), ("c", "d")])
            ),
        )
        dbs = {0: session.snapshot().db}
        observations = []
        obs_lock = threading.Lock()

        def writer():
            session.define_view("V(X, Z) :- R(X, Y), R(Y, Z).")
            for i in range(30):
                version = session.apply([("insert", "R", (f"x{i}", f"y{i}"))])
                dbs[version] = session.snapshot().db
                if i % 10 == 5:
                    session.drop_view("V")
                    session.define_view("V(X, Z) :- R(X, Y), R(Y, Z).")

        def reader():
            for _ in range(30):
                result = session.query(PATH_QUERY, use_views=True)
                with obs_lock:
                    observations.append(
                        (result.version, row_values(result.table))
                    )

        run_threads([writer, reader, reader])

        expression = ra_of_ucq(parse_query(PATH_QUERY))
        checked = {}
        for version, answer in observations:
            if version not in checked:
                reference = evaluate_ct(expression, dbs[version], name="Q")
                checked[version] = row_values(reference)
            assert answer == checked[version]

    def test_non_ground_stress_rep_equality(self):
        """The invariant in full possible-worlds form: with variables in
        the database, a response is correct when its *represented world
        set* equals the reference's — ``strong_canonicalize``-equality
        over enumerated worlds, exactly the paper's notion of equivalent
        representations."""
        table = c_table(
            "R",
            2,
            [
                (("a", "?x"),),
                ((("?x", "c")), "?x != a"),
                (("b", "c"),),
            ],
        )
        session = DatabaseSession("g", TableDatabase.single(table))
        dbs = {0: session.snapshot().db}
        observations = []
        obs_lock = threading.Lock()
        query_text = "Q(X, Y) :- R(X, Y)."

        def writer():
            for i in range(6):
                version = session.apply([("insert", "R", (f"w{i}", f"w{i}"))])
                dbs[version] = session.snapshot().db

        def reader():
            for _ in range(8):
                result = session.query(query_text)
                with obs_lock:
                    observations.append((result.version, result.table))

        run_threads([writer, reader, reader])

        expression = ra_of_ucq(parse_query(query_text))

        def canonical_worlds(answer):
            db = TableDatabase.single(
                CTable("Q", answer.arity, answer.rows, answer.global_condition)
            )
            protected = {c for w in enumerate_worlds(db) for c in w.constants()}
            # Protect the named constants; only invented nulls may rename.
            named = {c for c in protected if not c.value.startswith("@")}
            return {
                strong_canonicalize(w, named) for w in enumerate_worlds(db)
            }

        checked = {}
        for version, answer in observations:
            if version not in checked:
                reference = evaluate_ct(expression, dbs[version], name="Q")
                checked[version] = canonical_worlds(reference)
            assert canonical_worlds(answer) == checked[version], (
                f"rep() at version {version} differs from the prefix database"
            )

    def test_cached_dispatch_stress_every_answer_matches_a_prefix(self):
        """The ground stress test routed through the request cache: with
        a :class:`QueryDispatcher` (cache enabled) between readers and
        the session, every answer — cached or freshly evaluated — must
        still equal evaluation at the update-stream prefix of exactly
        its version.  A cache that ever served an entry across a version
        bump fails the prefix check immediately."""
        from repro.server.pool import QueryDispatcher

        rng = random.Random(0xCAC4E)
        edges = [(f"n{rng.randrange(8)}", f"n{rng.randrange(8)}") for _ in range(12)]
        session = DatabaseSession(
            "g", TableDatabase.single(codd_table("R", 2, set(edges)))
        )
        dispatcher = QueryDispatcher(workers=0, cache_size=64)
        dbs = {0: session.snapshot().db}
        observations = []
        obs_lock = threading.Lock()

        def writer():
            present = set(row_values(session.snapshot().db["R"]))
            for _ in range(50):
                if present and rng.random() < 0.4:
                    fact = rng.choice(sorted(present))
                    present.discard(fact)
                    op = ("delete", "R", fact)
                else:
                    fact = (f"n{rng.randrange(8)}", f"n{rng.randrange(8)}")
                    present.add(fact)
                    op = ("insert", "R", fact)
                version = session.apply([op])
                dbs[version] = session.snapshot().db

        def reader():
            for _ in range(40):
                result, _served_by = dispatcher.query(session, PATH_QUERY)
                with obs_lock:
                    observations.append((result.version, row_values(result.table)))

        run_threads([writer, reader, reader, reader])

        # Quiesced repeats at the final version must hit the cache.
        dispatcher.query(session, PATH_QUERY)
        _, served_by = dispatcher.query(session, PATH_QUERY)
        assert served_by == "cache"
        assert dispatcher.cache.counters()["hits"] > 0
        dispatcher.close()

        expression = ra_of_ucq(parse_query(PATH_QUERY))
        assert observations, "readers never ran"
        checked = {}
        for version, answer in observations:
            assert version in dbs, f"answer at unpublished version {version}"
            if version not in checked:
                reference = evaluate_ct(expression, dbs[version], name="Q")
                checked[version] = row_values(reference)
            assert answer == checked[version], (
                f"cached dispatch answer at version {version} matches no "
                f"prefix of the update stream"
            )

    def test_concurrent_writers_serialize(self):
        """Two writers racing on one session: every op lands exactly
        once and the final database reflects all of them."""
        session = DatabaseSession(
            "g", TableDatabase.single(codd_table("R", 2, [("seed", "seed")]))
        )

        def writer(tag):
            def go():
                for i in range(20):
                    session.apply([("insert", "R", (f"{tag}{i}", tag))])

            return go

        run_threads([writer("a"), writer("b")])
        assert session.version == 40
        values = row_values(session.snapshot().db["R"])
        assert {(f"a{i}", "a") for i in range(20)} <= values
        assert {(f"b{i}", "b") for i in range(20)} <= values
