"""Tests for repro.server.pool: the worker pool, request cache,
latency tracker and the query dispatcher's degradation ladder.

The pool pieces are exercised directly (not over HTTP — that surface is
covered in ``tests/test_server.py``) so failures localize to the
dispatch layer.  Worker processes use the ``spawn`` start method, so
each pool-backed test pays a process startup; the suite keeps pools
small (one or two workers) and reuses them within a test.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.tables import TableDatabase, codd_table
from repro.server import DatabaseSession, SessionError
from repro.server.pool import (
    LatencyTracker,
    QueryDispatcher,
    RequestCache,
    WorkerPool,
)


def graph_db(*edges):
    return TableDatabase.single(codd_table("R", 2, list(edges)))


def row_values(table):
    return {tuple(t.value for t in row.terms) for row in table.rows}


PATH_QUERY = "Q(X, Z) :- R(X, Y), R(Y, Z)."


# ---------------------------------------------------------------------------
# LatencyTracker
# ---------------------------------------------------------------------------


class TestLatencyTracker:
    def test_empty_summary(self):
        tracker = LatencyTracker()
        assert tracker.summary() == {
            "count": 0,
            "window": 0,
            "mean_ms": 0.0,
            "p50_ms": 0.0,
            "p99_ms": 0.0,
        }

    def test_nearest_rank_percentiles(self):
        tracker = LatencyTracker(window=200)
        # 1ms .. 100ms: nearest-rank p50 is the 50th sample, p99 the 99th.
        for i in range(1, 101):
            tracker.record(i / 1000.0)
        assert tracker.percentile(0.50) == pytest.approx(0.050)
        assert tracker.percentile(0.99) == pytest.approx(0.099)
        assert tracker.percentile(1.00) == pytest.approx(0.100)
        summary = tracker.summary()
        assert summary["count"] == 100
        assert summary["p50_ms"] == pytest.approx(50.0)
        assert summary["p99_ms"] == pytest.approx(99.0)
        assert summary["mean_ms"] == pytest.approx(50.5)

    def test_window_bounds_percentiles_but_not_count(self):
        tracker = LatencyTracker(window=10)
        for i in range(100):
            tracker.record(float(i))
        summary = tracker.summary()
        assert summary["count"] == 100
        assert summary["window"] == 10
        # Only the last 10 samples (90..99) inform the percentiles.
        assert summary["p50_ms"] == pytest.approx(94000.0)


# ---------------------------------------------------------------------------
# RequestCache
# ---------------------------------------------------------------------------


class TestRequestCache:
    def test_hand_computed_hit_miss_sequence(self):
        cache = RequestCache(capacity=4)
        assert cache.get("a") is None          # miss
        cache.put("a", 1)
        assert cache.get("a") == 1             # hit
        assert cache.get("b") is None          # miss
        cache.put("b", 2)
        assert cache.get("a") == 1             # hit
        assert cache.get("b") == 2             # hit
        assert cache.get("c") is None          # miss
        counters = cache.counters()
        assert counters["hits"] == 3
        assert counters["misses"] == 3
        assert counters["entries"] == 2

    def test_lru_eviction_order(self):
        cache = RequestCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1    # refresh "a": "b" is now oldest
        cache.put("c", 3)             # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.counters()["entries"] == 2

    def test_put_overwrites_in_place(self):
        cache = RequestCache(capacity=2)
        cache.put("a", 1)
        cache.put("a", 9)
        assert cache.get("a") == 9
        assert cache.counters()["entries"] == 1


# ---------------------------------------------------------------------------
# WorkerPool
# ---------------------------------------------------------------------------


class TestWorkerPool:
    def test_disabled_pool_returns_none(self):
        pool = WorkerPool(0)
        session = DatabaseSession("g", graph_db(("a", "b")))
        assert not pool.enabled
        assert pool.query("g", session.snapshot(), PATH_QUERY) is None
        pool.close()

    def test_pool_answers_match_inline_and_ships_deltas(self):
        session = DatabaseSession("g", graph_db(("a", "b"), ("b", "c")))
        pool = WorkerPool(1, timeout=60.0)
        try:
            # First contact: the whole database crosses the pipe.
            result = pool.query("g", session.snapshot(), PATH_QUERY)
            assert row_values(result.table) == {("a", "c")}
            assert result.version == 0
            assert pool.counters["full_ships"] == 1

            # Same snapshot again: nothing ships, the worker's cache serves.
            result = pool.query("g", session.snapshot(), PATH_QUERY)
            assert row_values(result.table) == {("a", "c")}
            assert pool.counters["cached_ships"] == 1

            # One table changed: exactly that table ships as a delta.
            session.apply([("insert", "R", ("c", "d"))])
            result = pool.query("g", session.snapshot(), PATH_QUERY)
            assert result.version == 1
            assert row_values(result.table) == {("a", "c"), ("b", "d")}
            assert pool.counters["delta_ships"] == 1
            assert pool.counters["delta_tables"] == 1
            assert pool.counters["dispatched"] == 3
        finally:
            pool.close()

    def test_worker_session_errors_propagate(self):
        session = DatabaseSession("g", graph_db(("a", "b")))
        pool = WorkerPool(1, timeout=60.0)
        try:
            with pytest.raises(SessionError, match="unknown relation"):
                pool.query("g", session.snapshot(), "Q(X) :- Missing(X, Y).")
            with pytest.raises(SessionError, match="query"):
                pool.query("g", session.snapshot(), "garbage((")
        finally:
            pool.close()

    def test_dead_worker_degrades_and_respawns(self):
        session = DatabaseSession("g", graph_db(("a", "b"), ("b", "c")))
        pool = WorkerPool(1, timeout=60.0)
        try:
            assert pool.query("g", session.snapshot(), PATH_QUERY) is not None
            pool._slots[0].process.kill()
            pool._slots[0].process.join()
            # The dead worker is detected, the request degrades (None),
            # and the slot is respawned to keep the pool at full size.
            assert pool.query("g", session.snapshot(), PATH_QUERY) is None
            assert pool.counters["worker_failures"] == 1
            assert pool.counters["respawns"] == 1
            assert pool.alive_workers() == 1
            # The respawned worker serves again, with a fresh full ship
            # (its snapshot cache died with its predecessor).
            result = pool.query("g", session.snapshot(), PATH_QUERY)
            assert row_values(result.table) == {("a", "c")}
            assert pool.counters["full_ships"] == 2
        finally:
            pool.close()

    def test_unpicklable_payload_degrades_without_killing_the_worker(self):
        session = DatabaseSession("g", graph_db(("a", "b"), ("b", "c")))
        pool = WorkerPool(1, timeout=60.0)
        try:
            slot = pool._slots[0]
            original_send = slot.conn.send

            def refusing_send(obj):
                raise pickle.PicklingError("cannot pickle this payload")

            slot.conn.send = refusing_send
            assert pool.query("g", session.snapshot(), PATH_QUERY) is None
            assert pool.counters["pickle_failures"] == 1
            assert pool.counters["respawns"] == 0

            # The pipe never saw a byte, so the same worker still serves.
            slot.conn.send = original_send
            result = pool.query("g", session.snapshot(), PATH_QUERY)
            assert row_values(result.table) == {("a", "c")}
        finally:
            pool.close()

    def test_closed_pool_refuses_work(self):
        session = DatabaseSession("g", graph_db(("a", "b")))
        pool = WorkerPool(1, timeout=60.0)
        pool.close()
        assert pool.query("g", session.snapshot(), PATH_QUERY) is None
        pool.close()  # idempotent


# ---------------------------------------------------------------------------
# QueryDispatcher: the degradation ladder
# ---------------------------------------------------------------------------


class TestQueryDispatcher:
    def test_cache_hits_and_never_serves_across_versions(self):
        session = DatabaseSession("g", graph_db(("a", "b"), ("b", "c")))
        dispatcher = QueryDispatcher(workers=0, cache_size=16)
        try:
            r1, how1 = dispatcher.query(session, PATH_QUERY)
            assert how1 == "inline" and r1.version == 0
            r2, how2 = dispatcher.query(session, PATH_QUERY)
            assert how2 == "cache" and r2 is r1

            # A version bump must *never* surface the cached answer.
            session.apply([("insert", "R", ("c", "d"))])
            r3, how3 = dispatcher.query(session, PATH_QUERY)
            assert how3 == "inline"
            assert r3.version == 1
            assert row_values(r3.table) == {("a", "c"), ("b", "d")}
            # ... but the old version's entry is still keyed separately.
            r4, how4 = dispatcher.query(session, PATH_QUERY)
            assert how4 == "cache" and r4.version == 1

            counters = dispatcher.cache.counters()
            assert counters["hits"] == 2
            assert counters["misses"] == 2
        finally:
            dispatcher.close()

    def test_hand_computed_counter_sequence(self):
        session = DatabaseSession("g", graph_db(("a", "b"), ("b", "c")))
        other_query = "P(X) :- R(X, Y)."
        dispatcher = QueryDispatcher(workers=0, cache_size=16)
        try:
            dispatcher.query(session, PATH_QUERY)      # miss
            dispatcher.query(session, PATH_QUERY)      # hit
            dispatcher.query(session, other_query)     # miss
            session.apply([("insert", "R", ("c", "d"))])
            dispatcher.query(session, PATH_QUERY)      # miss (new version)
            dispatcher.query(session, PATH_QUERY)      # hit
            dispatcher.query(session, other_query)     # miss (new version)
            counters = dispatcher.cache.counters()
            assert counters["hits"] == 2
            assert counters["misses"] == 4
            assert dispatcher.counters["queries"] == 6
            assert dispatcher.counters["cache_answers"] == 2
            assert dispatcher.counters["inline_answers"] == 4
        finally:
            dispatcher.close()

    def test_option_variations_do_not_share_cache_entries(self):
        session = DatabaseSession("g", graph_db(("a", "b"), ("b", "c")))
        dispatcher = QueryDispatcher(workers=0, cache_size=16)
        try:
            _, how1 = dispatcher.query(session, PATH_QUERY)
            _, how2 = dispatcher.query(session, PATH_QUERY, naive=True)
            _, how3 = dispatcher.query(session, PATH_QUERY, ordering="greedy")
            assert (how1, how2, how3) == ("inline", "inline", "inline")
            _, how4 = dispatcher.query(session, PATH_QUERY, naive=True)
            assert how4 == "cache"
        finally:
            dispatcher.close()

    def test_explain_bypasses_the_cache(self):
        session = DatabaseSession("g", graph_db(("a", "b"), ("b", "c")))
        dispatcher = QueryDispatcher(workers=0, cache_size=16)
        try:
            r1, how1 = dispatcher.query(session, PATH_QUERY, explain=True)
            r2, how2 = dispatcher.query(session, PATH_QUERY, explain=True)
            assert how1 == how2 == "inline"
            assert isinstance(r1.explain, list) and isinstance(r2.explain, list)
            assert dispatcher.cache.counters()["entries"] == 0
        finally:
            dispatcher.close()

    def test_view_answers_rank_above_evaluation(self):
        session = DatabaseSession("g", graph_db(("a", "b"), ("b", "c")))
        session.define_view("V(X, Z) :- R(X, Y), R(Y, Z).")
        dispatcher = QueryDispatcher(workers=0, cache_size=16)
        try:
            result, how = dispatcher.query(
                session, "W(X, Z) :- R(X, Y), R(Y, Z).", use_views=True
            )
            assert how == "view"
            assert result.answered_by_view == "V"
            assert result.table.name == "W"
            # The view answer is cached under the use_views key.
            _, how2 = dispatcher.query(
                session, "W(X, Z) :- R(X, Y), R(Y, Z).", use_views=True
            )
            assert how2 == "cache"
            # The same text without use_views evaluates from base.
            _, how3 = dispatcher.query(session, "W(X, Z) :- R(X, Y), R(Y, Z).")
            assert how3 == "inline"
        finally:
            dispatcher.close()

    def test_cache_disabled(self):
        session = DatabaseSession("g", graph_db(("a", "b"), ("b", "c")))
        dispatcher = QueryDispatcher(workers=0, cache_size=0)
        try:
            assert dispatcher.cache is None
            _, how1 = dispatcher.query(session, PATH_QUERY)
            _, how2 = dispatcher.query(session, PATH_QUERY)
            assert how1 == how2 == "inline"
        finally:
            dispatcher.close()

    def test_bad_query_counts_as_error(self):
        session = DatabaseSession("g", graph_db(("a", "b")))
        dispatcher = QueryDispatcher(workers=0, cache_size=16)
        try:
            with pytest.raises(SessionError):
                dispatcher.query(session, "garbage((")
            assert dispatcher.counters["errors"] == 1
            assert dispatcher.latency.summary()["count"] == 1
        finally:
            dispatcher.close()

    def test_inline_fallback_caches_at_its_own_version(self, monkeypatch):
        """If the in-process fallback observes a newer snapshot than the
        dispatch did (a writer published in between), its answer must be
        cached under the *newer* version — caching it under the dispatch
        version would serve a future answer for a version it does not
        represent."""
        session = DatabaseSession("g", graph_db(("a", "b"), ("b", "c")))
        dispatcher = QueryDispatcher(workers=0, cache_size=16)
        original_query = DatabaseSession.query
        raced = {"done": False}

        def racing_query(self, query_text, **kwargs):
            if not raced["done"]:
                raced["done"] = True
                self.apply([("insert", "R", ("c", "d"))])
            return original_query(self, query_text, **kwargs)

        monkeypatch.setattr(DatabaseSession, "query", racing_query)
        try:
            result, how = dispatcher.query(session, PATH_QUERY)
            assert how == "inline"
            assert result.version == 1  # evaluated after the racing write
            # A fresh lookup at version 1 hits; nothing is cached for 0.
            hit, how2 = dispatcher.query(session, PATH_QUERY)
            assert how2 == "cache"
            assert hit.version == 1
            assert row_values(hit.table) == {("a", "c"), ("b", "d")}
        finally:
            dispatcher.close()

    def test_pool_rung_feeds_the_cache(self):
        session = DatabaseSession("g", graph_db(("a", "b"), ("b", "c")))
        dispatcher = QueryDispatcher(workers=1, cache_size=16)
        try:
            r1, how1 = dispatcher.query(session, PATH_QUERY)
            assert how1 == "pool"
            assert row_values(r1.table) == {("a", "c")}
            _, how2 = dispatcher.query(session, PATH_QUERY)
            assert how2 == "cache"
            session.apply([("insert", "R", ("c", "d"))])
            r3, how3 = dispatcher.query(session, PATH_QUERY)
            assert how3 == "pool" and r3.version == 1
            assert dispatcher.counters["pool_answers"] == 2
        finally:
            dispatcher.close()

    def test_stats_shape(self):
        session = DatabaseSession("g", graph_db(("a", "b"), ("b", "c")))
        dispatcher = QueryDispatcher(workers=0, cache_size=16)
        try:
            dispatcher.query(session, PATH_QUERY)
            stats = dispatcher.stats()
            assert set(stats) == {"queries", "cache", "pool", "latency", "slow_queries"}
            assert stats["queries"]["queries"] == 1
            assert stats["cache"]["enabled"] is True
            assert stats["pool"] == {"enabled": False, "workers": 0}
            assert stats["latency"]["count"] == 1
            assert stats["latency"]["p50_ms"] >= 0.0
            import json

            json.dumps(stats)  # JSON-ready by contract (the /stats body)
        finally:
            dispatcher.close()
