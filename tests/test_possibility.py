"""Tests for the possibility problem (Theorems 5.1 and 5.2(1))."""

import pytest

from oracles import oracle_possible
from repro.core.conditions import Conjunction, Eq, Neq
from repro.core.possibility import (
    is_possible,
    possible_codd,
    possible_enumerate,
    possible_posexist,
    possible_search,
)
from repro.core.tables import CTable, TableDatabase, c_table, codd_table, e_table, i_table
from repro.core.terms import Variable
from repro.queries import UCQQuery, atom, cq
from repro.relational.instance import Instance, Relation
from repro.workloads import random_subinstance, random_table, random_world

x, y, z = Variable("x"), Variable("y"), Variable("z")


class TestCoddMatching:
    """Theorem 5.1(1): POSS(*, -) in PTIME for Codd-tables."""

    def test_facts_match_distinct_rows(self):
        table = codd_table("T", 1, [("?a",), ("?b",)])
        db = TableDatabase.single(table)
        assert possible_codd(Instance({"T": [(1,), (2,)]}), db)

    def test_too_many_facts(self):
        table = codd_table("T", 1, [("?a",)])
        db = TableDatabase.single(table)
        assert not possible_codd(Instance({"T": [(1,), (2,)]}), db)

    def test_constant_rows_constrain(self):
        table = codd_table("T", 2, [(1, "?a"), (2, "?b")])
        db = TableDatabase.single(table)
        assert possible_codd(Instance({"T": [(1, 5)]}), db)
        assert not possible_codd(Instance({"T": [(3, 5)]}), db)

    def test_empty_request_always_possible(self):
        table = codd_table("T", 1, [("?a",)])
        db = TableDatabase.single(table)
        assert possible_codd(Instance({"T": Relation(1)}), db)

    def test_requires_codd(self):
        table = e_table("T", 2, [(x, x)])
        with pytest.raises(ValueError):
            possible_codd(Instance({"T": [(1, 1)]}), TableDatabase.single(table))

    def test_agrees_with_search_and_oracle(self, rng):
        for _ in range(20):
            table = random_table(rng, "codd", rows=3, arity=2, num_constants=3)
            db = TableDatabase.single(table)
            request = random_subinstance(rng, random_world(rng, db), keep=0.6)
            expected = oracle_possible(request, db)
            assert possible_codd(request, db) == expected
            assert possible_search(request, db) == expected


class TestSearchOnConditionedTables:
    def test_shared_variable_conflict(self):
        table = e_table("T", 2, [(x, 1), (x, 2)])
        db = TableDatabase.single(table)
        assert is_possible(Instance({"T": [(5, 1), (5, 2)]}), db)
        assert not is_possible(Instance({"T": [(5, 1), (6, 2)]}), db)

    def test_inequality_blocks(self):
        table = i_table("T", 1, [("?a",)], "a != 1")
        db = TableDatabase.single(table)
        assert not is_possible(Instance({"T": [(1,)]}), db)
        assert is_possible(Instance({"T": [(2,)]}), db)

    def test_local_conditions_joint_satisfiability(self):
        table = c_table("T", 1, [((1,), "u = 0"), ((2,), "u != 0")])
        db = TableDatabase.single(table)
        assert is_possible(Instance({"T": [(1,)]}), db)
        assert is_possible(Instance({"T": [(2,)]}), db)
        assert not is_possible(Instance({"T": [(1,), (2,)]}), db)

    def test_two_facts_cannot_share_a_row(self):
        table = c_table("T", 1, [(("?a",),), ((3,),)])
        db = TableDatabase.single(table)
        assert is_possible(Instance({"T": [(1,), (3,)]}), db)
        assert not is_possible(Instance({"T": [(1,), (2,)]}), db)

    def test_agrees_with_oracle(self, rng):
        for kind in ("e", "i", "g", "c"):
            for _ in range(10):
                table = random_table(rng, kind, rows=3, num_constants=3)
                db = TableDatabase.single(table)
                request = random_subinstance(rng, random_world(rng, db), keep=0.6)
                assert is_possible(request, db) == oracle_possible(request, db)


class TestBoundedPossibilityViaAlgebra:
    """Theorem 5.2(1): POSS(k, q) for positive existential q on c-tables."""

    def _db(self):
        return TableDatabase.single(
            c_table("R", 2, [((1, "?x"),), ((2, "?y"), "y != 0")])
        )

    def test_projection_view(self):
        q = UCQQuery([cq(atom("Q", "B"), atom("R", "A", "B"))])
        assert possible_posexist(Instance({"Q": [(7,)]}), self._db(), q)
        # (0) can only come from row 1's x.
        assert possible_posexist(Instance({"Q": [(0,)]}), self._db(), q)

    def test_join_view(self):
        q = UCQQuery(
            [cq(atom("Q", "A", "C"), atom("R", "A", "B"), atom("R", "C", "B"))]
        )
        db = self._db()
        # x = y joins rows 1 and 2 (requires y != 0 fine).
        assert possible_posexist(Instance({"Q": [(1, 2)]}), db, q)
        assert not possible_posexist(Instance({"Q": [(1, 3)]}), db, q)

    def test_condition_conflict_detected(self):
        q = UCQQuery([cq(atom("Q", "B"), atom("R", "A", "B"))])
        table = c_table("R", 2, [((1, "?x"), "x = 5")])
        db = TableDatabase.single(table)
        assert possible_posexist(Instance({"Q": [(5,)]}), db, q)
        assert not possible_posexist(Instance({"Q": [(6,)]}), db, q)

    def test_agrees_with_enumeration(self, rng):
        q = UCQQuery([cq(atom("Q", "B"), atom("R", "A", "B"))])
        for _ in range(10):
            table = random_table(rng, "c", name="R", rows=3, num_constants=3)
            db = TableDatabase.single(table)
            world = q(random_world(rng, db))
            request = random_subinstance(rng, world, keep=0.5)
            assert possible_posexist(request, db, q) == possible_enumerate(
                request, db, q
            )

    def test_ucq_with_inequality_side_condition(self):
        # The folding accepts the pos.-exist.-with-!= fragment too.
        q = UCQQuery(
            [cq(atom("Q", "B"), atom("R", "A", "B"), where=[Neq(Variable("B"), 0)])]
        )
        assert possible_posexist(Instance({"Q": [(1,)]}), self._db(), q)
        assert not possible_posexist(Instance({"Q": [(0,)]}), self._db(), q)


class TestDispatch:
    def test_auto_uses_matching_for_codd(self):
        table = codd_table("T", 1, [("?a",)])
        db = TableDatabase.single(table)
        assert is_possible(Instance({"T": [(1,)]}), db)

    def test_method_forcing(self):
        table = codd_table("T", 1, [("?a",)])
        db = TableDatabase.single(table)
        request = Instance({"T": [(1,)]})
        assert is_possible(request, db, method="matching")
        assert is_possible(request, db, method="search")
        assert is_possible(request, db, method="enumerate")
        with pytest.raises(ValueError):
            is_possible(request, db, method="bogus")
        with pytest.raises(ValueError):
            is_possible(request, db, method="algebra")  # needs a UCQ
