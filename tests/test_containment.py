"""Tests for the containment problem (Theorem 4.1 / 4.2 upper bounds)."""

import pytest

from oracles import oracle_contains
from repro.core.conditions import Conjunction, Eq, Neq
from repro.core.containment import (
    containment_enumerate,
    containment_freeze,
    contains,
    freeze_instance,
)
from repro.core.tables import CTable, TableDatabase, c_table, codd_table, e_table, g_table, i_table
from repro.core.terms import Variable
from repro.queries import UCQQuery, atom, cq
from repro.relational.instance import Instance
from repro.workloads import random_table

x, y, z = Variable("x"), Variable("y"), Variable("z")


class TestFreezeTechnique:
    """The Claim of Theorem 4.1: rep(T0) <= rep(T) iff K0 in rep(T)."""

    def test_identical_tables_contained(self):
        t0 = codd_table("T", 2, [(1, "?a")])
        t = codd_table("T", 2, [(1, "?b")])
        assert containment_freeze(
            TableDatabase.single(t0), TableDatabase.single(t)
        )

    def test_table_in_more_general_table(self):
        t0 = codd_table("T", 2, [(1, 2)])
        t = codd_table("T", 2, [("?a", "?b")])
        assert containment_freeze(
            TableDatabase.single(t0), TableDatabase.single(t)
        )

    def test_general_not_in_specific(self):
        t0 = codd_table("T", 2, [("?a", "?b")])
        t = codd_table("T", 2, [(1, "?c")])
        assert not containment_freeze(
            TableDatabase.single(t0), TableDatabase.single(t)
        )

    def test_gtable_lhs_equalities_incorporated(self):
        t0 = g_table("T", 2, [("?a", "?b")], Conjunction([Eq(x, y)]).substitute({}))
        # a = b is not actually linked to the matrix; use matrix variables.
        a, b = Variable("a"), Variable("b")
        t0 = g_table("T", 2, [(a, b)], Conjunction([Eq(a, b)]))
        t_diag = e_table("T", 2, [("?c", "?c")])
        t_free = codd_table("T", 2, [("?c", "?d")])
        assert containment_freeze(TableDatabase.single(t0), TableDatabase.single(t_diag))
        assert containment_freeze(TableDatabase.single(t0), TableDatabase.single(t_free))
        # And the diagonal is NOT contained in a table pinned elsewhere.
        t_pinned = codd_table("T", 2, [(1, "?d")])
        assert not containment_freeze(
            TableDatabase.single(t0), TableDatabase.single(t_pinned)
        )

    def test_unsatisfiable_lhs_contained_in_everything(self):
        t0 = g_table("T", 1, [(1,)], Conjunction([Eq(x, 1), Neq(x, 1)]))
        t = codd_table("T", 1, [(2,)])
        assert freeze_instance(TableDatabase.single(t0)) is None
        assert containment_freeze(TableDatabase.single(t0), TableDatabase.single(t))

    def test_etable_rhs_uses_search(self):
        t0 = e_table("T", 2, [("?a", "?a")])
        t = e_table("T", 2, [("?c", "?c")])
        assert containment_freeze(TableDatabase.single(t0), TableDatabase.single(t))
        t_codd = codd_table("T", 2, [("?c", "?d")])
        assert containment_freeze(
            TableDatabase.single(t0), TableDatabase.single(t_codd)
        )
        # The converse fails: free pairs are not all diagonal.
        assert not containment_freeze(
            TableDatabase.single(t_codd), TableDatabase.single(t)
        )

    def test_freeze_requires_g_lhs(self):
        lhs = c_table("T", 1, [((1,), "u = 0")])
        rhs = codd_table("T", 1, [("?a",)])
        with pytest.raises(ValueError):
            containment_freeze(TableDatabase.single(lhs), TableDatabase.single(rhs))

    def test_freeze_requires_e_rhs(self):
        lhs = codd_table("T", 1, [(1,)])
        rhs = i_table("T", 1, [("?a",)], "a != 1")
        with pytest.raises(ValueError):
            containment_freeze(TableDatabase.single(lhs), TableDatabase.single(rhs))

    def test_agrees_with_oracle_random(self, rng):
        for _ in range(12):
            t0 = random_table(rng, rng.choice(["codd", "e", "g"]), rows=2, num_constants=2)
            t = random_table(rng, rng.choice(["codd", "e"]), rows=2, num_constants=2)
            db0, db = TableDatabase.single(t0), TableDatabase.single(t)
            if not db0.is_g_database() or db.classify() not in ("codd", "e"):
                continue
            assert containment_freeze(db0, db) == oracle_contains(db0, db)


class TestEnumerationProcedure:
    def test_itable_rhs(self):
        # LHS: {1, 2}; RHS: {x, y} with x != y -- containment holds.
        t0 = codd_table("T", 1, [(1,), (2,)])
        t = i_table("T", 1, [("?a",), ("?b",)], "a != b")
        assert contains(TableDatabase.single(t0), TableDatabase.single(t))

    def test_itable_rhs_violated(self):
        # LHS has a world {1} (one element); RHS worlds always have 2.
        t0 = codd_table("T", 1, [("?a",), ("?b",)])
        t = i_table("T", 1, [("?c",), ("?d",)], "c != d")
        assert not contains(TableDatabase.single(t0), TableDatabase.single(t))

    def test_ctable_lhs(self):
        lhs = c_table("T", 1, [((1,), "u = 0")])
        rhs = c_table("T", 1, [((1,), "w = 0")])
        assert contains(TableDatabase.single(lhs), TableDatabase.single(rhs))

    def test_view_on_left(self):
        q0 = UCQQuery([cq(atom("Q", "A"), atom("R", "A", "B"))])
        lhs = TableDatabase.single(CTable("R", 2, [(1, x)]))
        rhs = TableDatabase.single(CTable("Q", 1, [(1,)]))
        assert contains(lhs, rhs, query0=q0)

    def test_view_on_right(self):
        q = UCQQuery([cq(atom("Q", "A"), atom("R", "A", "B"))])
        lhs = TableDatabase.single(CTable("Q", 1, [(1,)]))
        rhs = TableDatabase.single(CTable("R", 2, [(1, x)]))
        assert contains(lhs, rhs, query=q)

    def test_view_both_sides(self):
        q0 = UCQQuery([cq(atom("Q", "A"), atom("R", "A"))])
        q = UCQQuery([cq(atom("Q", "A"), atom("S", "A"))])
        lhs = TableDatabase.single(CTable("R", 1, [(x,)]))
        rhs = TableDatabase.single(CTable("S", 1, [(y,)]))
        assert contains(lhs, rhs, query0=q0, query=q)

    def test_reflexivity_random(self, rng):
        for kind in ("codd", "e", "i", "g", "c"):
            table = random_table(rng, kind, rows=2, num_constants=2)
            db = TableDatabase.single(table)
            assert contains(db, db)

    def test_agrees_with_oracle_random(self, rng):
        for _ in range(10):
            t0 = random_table(rng, rng.choice(["codd", "e", "i"]), rows=2, num_constants=2)
            t = random_table(rng, rng.choice(["codd", "e", "i"]), rows=2, num_constants=2)
            db0, db = TableDatabase.single(t0), TableDatabase.single(t)
            assert contains(db0, db) == oracle_contains(db0, db)

    def test_method_forcing(self):
        t0 = codd_table("T", 1, [(1,)])
        t = codd_table("T", 1, [("?a",)])
        db0, db = TableDatabase.single(t0), TableDatabase.single(t)
        assert contains(db0, db, method="freeze")
        assert contains(db0, db, method="enumerate")
        with pytest.raises(ValueError):
            contains(db0, db, method="bogus")


class TestHierarchy:
    """rep-containments along the paper's representation hierarchy."""

    def test_codd_table_inside_its_etable_weakening(self):
        # Adding repeated variables only restricts worlds: e-table diag
        # is contained in the free Codd pair, not vice versa.
        diag = e_table("T", 2, [("?a", "?a")])
        free = codd_table("T", 2, [("?b", "?c")])
        assert contains(TableDatabase.single(diag), TableDatabase.single(free))
        assert not contains(TableDatabase.single(free), TableDatabase.single(diag))

    def test_itable_restricts_codd(self):
        restricted = i_table("T", 1, [("?a",)], "a != 0")
        free = codd_table("T", 1, [("?b",)])
        db_r = TableDatabase.single(restricted)
        db_f = TableDatabase.single(free)
        assert contains(db_r, db_f)
        assert not contains(db_f, db_r)
