"""Unit tests for the table hierarchy (repro.core.tables)."""

import pytest

from repro.core.conditions import Conjunction, Eq, Neq, TRUE, parse_conjunction
from repro.core.tables import (
    CTable,
    Row,
    TableDatabase,
    c_table,
    codd_table,
    e_table,
    g_table,
    i_table,
)
from repro.core.terms import Constant, Variable

x, y, z = Variable("x"), Variable("y"), Variable("z")


class TestRow:
    def test_terms_coerced(self):
        row = Row((0, "?x"))
        assert row.terms == (Constant(0), Variable("x"))

    def test_condition_default_true(self):
        assert not Row((1,)).has_local_condition()

    def test_condition_from_conjunction(self):
        row = Row((1,), Conjunction([Eq(x, 1)]))
        assert row.has_local_condition()
        assert row.condition_dnf() == (Conjunction([Eq(x, 1)]),)

    def test_variables_include_condition_variables(self):
        row = Row((1,), Conjunction([Eq(x, 1)]))
        assert row.variables() == {x}
        assert row.matrix_variables() == set()

    def test_substitute(self):
        row = Row((x, 1), Conjunction([Neq(y, 2)]))
        out = row.substitute({x: Constant(5), y: z})
        assert out.terms == (Constant(5), Constant(1))
        assert out.condition_dnf() == (Conjunction([Neq(z, 2)]),)


class TestClassification:
    def test_codd(self):
        t = CTable("R", 2, [(0, x), (y, 1)])
        assert t.classify() == "codd"
        assert t.is_codd() and t.is_e_table() and t.is_i_table() and t.is_g_table()

    def test_e_by_repetition(self):
        t = CTable("R", 2, [(0, x), (x, 1)])
        assert t.classify() == "e"
        assert not t.is_i_table()

    def test_i_by_inequalities(self):
        t = CTable("R", 1, [(x,), (y,)], Conjunction([Neq(x, y)]))
        assert t.classify() == "i"
        assert not t.is_e_table()

    def test_g_by_mixed_condition(self):
        t = CTable("R", 1, [(x,)], Conjunction([Eq(x, y), Neq(y, 1)]))
        assert t.classify() == "g"

    def test_g_by_inequality_over_repeated_matrix(self):
        t = CTable("R", 2, [(x, x)], Conjunction([Neq(x, 1)]))
        assert t.classify() == "g"

    def test_c_by_local_condition(self):
        t = CTable("R", 1, [Row((1,), Conjunction([Eq(x, 1)]))])
        assert t.classify() == "c"
        assert not t.is_g_table()

    def test_database_classification_shared_variables(self):
        a = CTable("A", 1, [(x,)])
        b = CTable("B", 1, [(x,)])
        db = TableDatabase([a, b])
        assert db.classify() == "e"  # sharing acts like repetition

    def test_database_classification_extra_condition(self):
        a = CTable("A", 1, [(x,)])
        db = TableDatabase([a], extra_condition=Conjunction([Neq(x, 1)]))
        assert db.classify() == "i"


class TestConstructors:
    def test_codd_table_rejects_repetition(self):
        with pytest.raises(ValueError):
            codd_table("R", 2, [(x, x)])

    def test_e_table_allows_repetition(self):
        t = e_table("R", 2, [(x, x), (x, 1)])
        assert t.classify() == "e"

    def test_i_table_rejects_equalities(self):
        with pytest.raises(ValueError):
            i_table("R", 1, [(x,)], Conjunction([Eq(x, 1)]))

    def test_i_table_rejects_repeated_matrix(self):
        with pytest.raises(ValueError):
            i_table("R", 2, [(x, x)], Conjunction([Neq(x, 1)]))

    def test_i_table_from_string_condition(self):
        t = i_table("R", 1, [("?x",), (1,)], "x != 1")
        assert t.classify() == "i"

    def test_g_table(self):
        t = g_table("R", 2, [("?x", "?x")], "x != 1")
        assert t.classify() == "g"

    def test_c_table_with_string_conditions(self):
        t = c_table(
            "R",
            2,
            [
                ((0, 1), "z = z"),
                ((0, "?x"), "y = 0"),
                (("?y", "?x"), "x != y"),
            ],
        )
        assert t.classify() == "c"
        assert len(t) == 3

    def test_c_table_plain_rows(self):
        t = c_table("R", 2, [(0, 1), (2, "?v")])
        assert t.classify() == "codd"


class TestCTableStructure:
    def test_duplicate_rows_removed(self):
        t = CTable("R", 1, [(1,), (1,), (x,)])
        assert len(t) == 2

    def test_arity_checked(self):
        with pytest.raises(ValueError):
            CTable("R", 2, [(1,)])

    def test_variables_and_constants(self):
        t = CTable("R", 2, [(x, 1)], Conjunction([Neq(y, 2)]))
        assert t.variables() == {x, y}
        assert t.constants() == {Constant(1), Constant(2)}

    def test_substitute(self):
        t = CTable("R", 1, [(x,)], Conjunction([Neq(x, 1)]))
        out = t.substitute({x: Constant(3)})
        assert out.rows[0].terms == (Constant(3),)
        assert out.global_condition == Conjunction([Neq(3, 1)])

    def test_str_rendering(self):
        t = c_table("R", 2, [((0, 1),), (("?x", 2), "x != 0")], "x != 3")
        text = str(t)
        assert "x != 3" in text
        assert "[x != 0]" in text


class TestTableDatabase:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            TableDatabase([CTable("R", 1, []), CTable("R", 1, [])])

    def test_global_condition_conjoins(self):
        a = CTable("A", 1, [(x,)], Conjunction([Neq(x, 1)]))
        b = CTable("B", 1, [(y,)], Conjunction([Neq(y, 2)]))
        db = TableDatabase([a, b], extra_condition=Conjunction([Neq(x, y)]))
        assert set(db.global_condition().atoms) == {
            Neq(x, 1),
            Neq(y, 2),
            Neq(x, y),
        }

    def test_schema(self):
        db = TableDatabase([CTable("A", 2, []), CTable("B", 1, [])])
        assert db.schema().arities() == (2, 1)

    def test_single(self):
        db = TableDatabase.single(CTable("R", 1, [(1,)]))
        assert db.names() == ("R",)
        assert db.total_rows() == 1


class TestDigestsAndDeltas:
    def make_db(self):
        return TableDatabase(
            [
                codd_table("R", 2, [("a", "b"), ("b", "c")]),
                codd_table("S", 1, [("a",)]),
            ]
        )

    def test_digest_is_stable_and_content_addressed(self):
        db = self.make_db()
        table = db["R"]
        assert table.digest() == table.digest()
        # Same content, fresh object: same digest.
        clone = CTable("R", 2, table.rows, table.global_condition)
        assert clone.digest() == table.digest()
        changed = table.extended([Row((Constant("c"), Constant("d")))])
        assert changed.digest() != table.digest()

    def test_delta_from_identity_is_empty(self):
        db = self.make_db()
        assert db.delta_from(db) == ()

    def test_delta_from_names_only_changed_tables(self):
        db = self.make_db()
        new_r = db["R"].extended([Row((Constant("c"), Constant("d")))])
        updated = db.replacing(new_r)
        delta = updated.delta_from(db)
        assert [t.name for t in delta] == ["R"]
        # Reconstructing from the base plus the delta gives the update.
        rebuilt = db.replacing(*delta)
        assert rebuilt.table_digests() == updated.table_digests()

    def test_delta_from_incompatible_shapes_is_none(self):
        db = self.make_db()
        different_schema = TableDatabase([codd_table("R", 2, [("a", "b")])])
        assert db.delta_from(different_schema) is None

    def test_delta_from_differing_extra_condition_is_none(self):
        a = CTable("A", 1, [(x,)])
        plain = TableDatabase([a])
        conditioned = TableDatabase([a], extra_condition=Conjunction([Neq(x, 1)]))
        assert plain.delta_from(conditioned) is None


class TestPickleRoundTrips:
    """The worker pool ships snapshots across process boundaries, so
    every value-object layer must survive pickling despite the
    immutability guards (``__setattr__`` raising breaks default slot
    unpickling; ``pickles_by_slots`` restores state around the guard)."""

    def roundtrip(self, obj):
        import pickle

        return pickle.loads(pickle.dumps(obj))

    def test_terms(self):
        assert self.roundtrip(Constant("a")) == Constant("a")
        assert self.roundtrip(Constant(3)) == Constant(3)
        assert self.roundtrip(Variable("x")) == Variable("x")

    def test_conditions(self):
        cond = parse_conjunction("?x = a, ?y != b")
        assert self.roundtrip(cond) == cond
        assert self.roundtrip(TRUE) == TRUE

    def test_tables_with_lazy_digest(self):
        table = c_table("R", 2, [((0, "?x"), "x != 9"), (("?y", 1),)], "y != 0")
        # Unset lazy digest slot: must pickle (the slot is skipped) ...
        clone = self.roundtrip(table)
        assert set(clone.rows) == set(table.rows)
        assert clone.global_condition == table.global_condition
        # ... and a memoised digest round-trips too.
        table.digest()
        again = self.roundtrip(table)
        assert again.digest() == table.digest()

    def test_database_and_statistics(self):
        from repro.relational.stats import Statistics

        db = TableDatabase(
            [
                codd_table("R", 2, [("a", "b"), ("b", "c")]),
                c_table("S", 1, [(("?v",), "v != a")]),
            ]
        )
        clone = self.roundtrip(db)
        assert clone.table_digests() == db.table_digests()
        stats = Statistics.collect(db)
        stats_clone = self.roundtrip(stats)
        assert stats_clone.get("R").rows == stats.get("R").rows
        assert len(stats_clone.get("R").columns) == 2
