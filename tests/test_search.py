"""Tests for the condition-system solver (repro.core.search)."""

import itertools

import pytest

from repro.core.conditions import (
    BoolAnd,
    BoolAtom,
    BoolOr,
    Conjunction,
    Eq,
    FALSE,
    Neq,
    TRUE,
)
from repro.core.search import solve_atom_cnf, solve_condition_system, witness_valuation
from repro.core.terms import Constant, Variable

x, y, z = Variable("x"), Variable("y"), Variable("z")


class TestSolveAtomCNF:
    def test_no_clauses_returns_hard(self):
        hard = Conjunction([Eq(x, 1)])
        assert solve_atom_cnf(hard, []) == hard

    def test_unsatisfiable_hard(self):
        assert solve_atom_cnf(FALSE, []) is None

    def test_single_clause_choice(self):
        hard = Conjunction([Eq(x, 1)])
        clauses = [[Eq(x, 2), Eq(y, 3)]]
        result = solve_atom_cnf(hard, clauses)
        assert result is not None
        assert result.implies(Eq(y, 3))

    def test_empty_clause_unsatisfiable(self):
        assert solve_atom_cnf(TRUE, [[]]) is None

    def test_interacting_clauses(self):
        # x = 1 or x = 2;  x != 1;  => x = 2.
        clauses = [[Eq(x, 1), Eq(x, 2)], [Neq(x, 1)]]
        result = solve_atom_cnf(TRUE, clauses)
        assert result is not None and result.implies(Eq(x, 2))

    def test_jointly_unsatisfiable_clauses(self):
        clauses = [[Eq(x, 1)], [Eq(x, 2)]]
        assert solve_atom_cnf(TRUE, clauses) is None

    def test_exhaustive_against_bruteforce(self):
        """Compare with brute force over a small finite assignment space."""
        domain = [Constant(0), Constant(1)]
        variables = [x, y]
        atom_pool = [Eq(x, 0), Eq(x, y), Neq(y, 1), Neq(x, y)]
        for bits in range(16):
            clauses = []
            for i, atom in enumerate(atom_pool):
                if bits >> i & 1:
                    clauses.append([atom, Neq(x, 0)])
            got = solve_atom_cnf(TRUE, clauses) is not None
            brute = False
            # Note: the solver works over the infinite domain, so brute force
            # over {0,1} plus one spare value per variable.
            wide = domain + [Constant(2), Constant(3)]
            for vx in wide:
                for vy in wide:
                    lookup = lambda t: {x: vx, y: vy}.get(t, t)
                    if all(
                        any(a.holds_for(lookup) for a in clause)
                        for clause in clauses
                    ):
                        brute = True
            assert got == brute, f"bits={bits}"


class TestSolveConditionSystem:
    def test_must_hold_chooses_disjunct(self):
        cond = BoolOr((BoolAtom(Eq(x, 1)), BoolAtom(Eq(x, 2))))
        result = solve_condition_system(Conjunction([Neq(x, 1)]), [cond])
        assert result is not None and result.implies(Eq(x, 2))

    def test_must_hold_conflict(self):
        cond = BoolAtom(Eq(x, 1))
        assert solve_condition_system(Conjunction([Neq(x, 1)]), [cond]) is None

    def test_must_fail_negates(self):
        cond = BoolAnd((BoolAtom(Eq(x, 1)), BoolAtom(Eq(y, 2))))
        result = solve_condition_system(TRUE, [], [cond])
        assert result is not None
        lookup_ok = not cond.satisfied_by(
            witness_valuation(result, variables=[x, y])
        )
        assert lookup_ok

    def test_must_fail_tautology_impossible(self):
        cond = BoolAtom(Eq(x, x))
        assert solve_condition_system(TRUE, [], [cond]) is None

    def test_hold_and_fail_interplay(self):
        hold = BoolAtom(Eq(x, 1))
        fail = BoolAtom(Eq(x, 1))
        assert solve_condition_system(TRUE, [hold], [fail]) is None

    def test_disjunctive_fail(self):
        # not(x=1 or x=2) => x != 1 and x != 2.
        cond = BoolOr((BoolAtom(Eq(x, 1)), BoolAtom(Eq(x, 2))))
        result = solve_condition_system(TRUE, [], [cond])
        assert result is not None
        assert result.implies(Neq(x, 1)) and result.implies(Neq(x, 2))


class TestWitnessValuation:
    def test_witness_satisfies(self):
        conj = Conjunction([Eq(x, 1), Neq(y, 1), Neq(y, z)])
        sigma = witness_valuation(conj, variables=[x, y, z])
        assert conj.satisfied_by(sigma)

    def test_witness_covers_requested_variables(self):
        sigma = witness_valuation(TRUE, variables=[x, y])
        assert x in sigma and y in sigma

    def test_witness_respects_equalities(self):
        conj = Conjunction([Eq(x, y)])
        sigma = witness_valuation(conj, variables=[x, y])
        assert sigma[x] == sigma[y]

    def test_witness_avoids(self):
        sigma = witness_valuation(TRUE, variables=[x], avoid=[Constant("@w0")])
        assert sigma[x] != Constant("@w0")

    def test_unsatisfiable_raises(self):
        with pytest.raises(ValueError):
            witness_valuation(FALSE)
