"""Recursive Datalog over c-tables: the differential-oracle harness.

The contract (ISSUE 9): for a pure Datalog program ``P`` and a c-table
database ``D``, the semi-naive engine of :mod:`repro.queries.fixpoint`
must satisfy ``rep(fixpoint(P, D)) = {ground_fixpoint(P, I) : I in
rep(D)}`` — evaluating on the condition-bearing tables commutes with
instantiating a world.  Three independent references pin it down:

* :func:`~repro.queries.fixpoint.naive_ct_refixpoint` — whole-program
  re-evaluation through :func:`~repro.ctalgebra.evaluate.evaluate_ct`
  each round, sharing no delta machinery with the engine under test;
* the **gold** per-world semantics — enumerate ``rep(D)`` and run the
  *ground* :class:`~repro.queries.datalog.DatalogQuery` fixpoint in each
  world;
* **incremental** ``insert_base`` — feeding inserts through the
  standing evaluation must land at the same fixpoint as recomputing
  from scratch over the updated base.

World sets are compared after
:func:`~repro.core.worlds.strong_canonicalize`, as in
``tests/test_views.py`` — different derivation orders may keep
different (equivalent) condition representatives, so syntactic row
equality is too strict.  The randomized harness holds the engine to
identical canonical world sets across 105+ randomized uncertain-graph
programs (condition-bearing edges, Or-domains, variables shared across
rows, disconnected components, empty deltas).

Also here: seeded property tests for the *ground* engines
(``naive_fixpoint == seminaive_fixpoint`` fact-for-fact over random
pure programs, marked ``slow``), the fail-fast arity regression test,
and unit tests for ``canonical_condition`` / ``datalog_fingerprint``.
"""

from __future__ import annotations

import random

import pytest

from repro.core.conditions import BoolAnd, BoolAtom, BoolOr, Conjunction, Eq
from repro.core.tables import CTable, Row, TableDatabase
from repro.core.terms import Constant, Variable
from repro.core.worlds import enumerate_worlds, strong_canonicalize
from repro.queries.datalog import DatalogQuery, naive_fixpoint, seminaive_fixpoint
from repro.queries.fixpoint import (
    CTFixpoint,
    canonical_condition,
    datalog_fingerprint,
    naive_ct_refixpoint,
)
from repro.queries.rules import Atom, Rule, atom
from repro.relational.instance import Instance, Relation
from repro.relational.parser import parse_datalog
from repro.workloads import (
    reachability_program,
    same_generation_program,
    transitive_closure_program,
    uncertain_graph_database,
)

PROGRAMS = (
    transitive_closure_program(),
    reachability_program(),
    same_generation_program(),
)


def _world_set(db, extra, query=None):
    worlds = enumerate_worlds(db, query=query, extra_constants=extra)
    return {strong_canonicalize(w, extra) for w in worlds}


def _extra(*dbs):
    constants = set()
    for db in dbs:
        constants |= db.constants()
    return sorted(constants, key=Constant.sort_key)


def assert_rep_equal(left, right):
    extra = _extra(left, right)
    assert _world_set(left, extra) == _world_set(right, extra)


def _random_db(rng, with_source):
    return uncertain_graph_database(
        rng,
        num_nodes=rng.randint(3, 5),
        num_edges=rng.randint(0, 7),
        num_sources=rng.randint(1, 2) if with_source else 0,
        num_variables=2,
        var_probability=0.25,
        cond_probability=0.4,
        or_probability=0.5,
    )


# ---------------------------------------------------------------------------
# The randomized differential harness
# ---------------------------------------------------------------------------

#: 105 randomized uncertain-graph programs, each compared world-set to
#: world-set against the independent naive refixpoint oracle.
RANDOM_CASES = list(range(105))


class TestDifferentialHarness:
    @pytest.mark.parametrize("seed", RANDOM_CASES)
    def test_seminaive_matches_naive_oracle(self, seed):
        rng = random.Random(0xDA7A + seed)
        text = PROGRAMS[seed % len(PROGRAMS)]
        db = _random_db(rng, with_source="source" in text)
        program = CTFixpoint(parse_datalog(text))
        assert_rep_equal(program.run(db), naive_ct_refixpoint(program, db))

    @pytest.mark.parametrize("seed", range(25))
    def test_gold_per_world_ground_fixpoint(self, seed):
        # The definitional check: the c-table fixpoint's world set is
        # exactly the set of ground fixpoints of the input's worlds.
        rng = random.Random(0x601D + seed)
        text = PROGRAMS[seed % len(PROGRAMS)]
        db = _random_db(rng, with_source="source" in text)
        program = CTFixpoint(parse_datalog(text))
        out = program.run(db)
        extra = _extra(db, out)
        gold = _world_set(db, extra, query=program.program)
        assert _world_set(out, extra) == gold


class TestIncrementalInserts:
    @pytest.mark.parametrize("seed", range(15))
    def test_insert_base_matches_recompute(self, seed):
        # A standing evaluation fed inserts one at a time must land at
        # the same fixpoint as compiling fresh over the updated base.
        rng = random.Random(0x1A5E + seed)
        db = _random_db(rng, with_source=False)
        program = CTFixpoint(parse_datalog(transitive_closure_program()))
        evaluation = program.evaluation(db)
        rows = list(db["edge"].rows)
        nodes = max(rng.randint(3, 5), 3)
        for _ in range(4):
            row = Row((Constant(rng.randrange(nodes)), Constant(rng.randrange(nodes))))
            evaluation.insert_base("edge", (row,))
            rows.append(row)
            db = TableDatabase([CTable("edge", 2, rows)])
            assert_rep_equal(evaluation.database(), program.run(db))

    def test_duplicate_insert_is_an_empty_delta(self):
        db = TableDatabase(
            [CTable("edge", 2, [(Constant(0), Constant(1)), (Constant(1), Constant(2))])]
        )
        program = CTFixpoint(parse_datalog(transitive_closure_program()))
        evaluation = program.evaluation(db)
        before = set(evaluation.table("TC").rows)
        # The row is already in the base: absorbed with zero rounds run.
        assert evaluation.insert_base("edge", (Row((Constant(0), Constant(1))),)) == 0
        assert set(evaluation.table("TC").rows) == before

    def test_subsumed_derivation_does_not_loop(self):
        # edge(0,1) conditional on v=0, then inserted unconditionally:
        # the stronger row subsumes the weaker derivations and the
        # fixpoint saturates instead of oscillating.
        v = Variable("v")
        db = TableDatabase(
            [
                CTable(
                    "edge",
                    2,
                    [
                        Row((Constant(0), Constant(1)), Conjunction([Eq(v, Constant(0))])),
                        Row((Constant(1), Constant(2))),
                    ],
                )
            ]
        )
        program = CTFixpoint(parse_datalog(transitive_closure_program()))
        evaluation = program.evaluation(db)
        evaluation.insert_base("edge", (Row((Constant(0), Constant(1))),))
        rows = list(db["edge"].rows) + [Row((Constant(0), Constant(1)))]
        assert_rep_equal(
            evaluation.database(),
            program.run(TableDatabase([CTable("edge", 2, rows)])),
        )


class TestEdgeCases:
    def test_empty_graph(self):
        db = TableDatabase([CTable("edge", 2, [])])
        out = CTFixpoint(parse_datalog(transitive_closure_program())).run(db)
        assert len(out["TC"]) == 0

    def test_disconnected_components_stay_disconnected(self):
        facts = [(0, 1), (1, 2), (10, 11)]
        db = TableDatabase(
            [CTable("edge", 2, [(Constant(a), Constant(b)) for a, b in facts])]
        )
        out = CTFixpoint(parse_datalog(transitive_closure_program())).run(db)
        closed = {(a.value, b.value) for a, b in (r.terms for r in out["TC"].rows)}
        assert closed == {(0, 1), (1, 2), (0, 2), (10, 11)}

    def test_or_domain_edge_splits_worlds(self):
        # edge(0, v) present only when v in {1, 2}: three closure worlds
        # (v=1 chains through to 3, v=2 dead-ends, any other value of v
        # drops the edge entirely).
        v = Variable("v")
        db = TableDatabase(
            [
                CTable(
                    "edge",
                    2,
                    [
                        Row(
                            (Constant(0), v),
                            BoolOr(
                                (
                                    BoolAtom(Eq(v, Constant(1))),
                                    BoolAtom(Eq(v, Constant(2))),
                                )
                            ),
                        ),
                        Row((Constant(1), Constant(3))),
                    ],
                )
            ]
        )
        program = CTFixpoint(parse_datalog(transitive_closure_program()))
        out = program.run(db)
        extra = _extra(db, out)
        worlds = _world_set(out, extra)
        assert len(worlds) == 3
        assert_rep_equal(out, naive_ct_refixpoint(program, db))

    def test_self_loop_terminates(self):
        db = TableDatabase([CTable("edge", 2, [(Constant(0), Constant(0))])])
        out = CTFixpoint(parse_datalog(transitive_closure_program())).run(db)
        assert [r.terms for r in out["TC"].rows] == [(Constant(0), Constant(0))]

    def test_cycle_closes_completely(self):
        facts = [(0, 1), (1, 2), (2, 0)]
        db = TableDatabase(
            [CTable("edge", 2, [(Constant(a), Constant(b)) for a, b in facts])]
        )
        out = CTFixpoint(parse_datalog(transitive_closure_program())).run(db)
        assert len(out["TC"]) == 9  # the full 3x3 relation

    def test_multiple_outputs(self):
        db = TableDatabase(
            [CTable("edge", 2, [(Constant(0), Constant(1))]),
             CTable("source", 1, [(Constant(0),)])]
        )
        text = transitive_closure_program() + " " + reachability_program()
        out = CTFixpoint(parse_datalog(text)).run(db)
        assert set(out.names()) == {"TC", "reach"}
        assert len(out["reach"]) == 2


# ---------------------------------------------------------------------------
# Ground engines: naive == semi-naive, fact for fact
# ---------------------------------------------------------------------------


def _random_ground_program(rng):
    """A random safe pure-Datalog program over EDB ``e/2``."""
    variables = ["X", "Y", "Z", "W"]
    idb = ["p", "q"]
    rules = []
    for head_pred in idb:
        for _ in range(rng.randint(1, 2)):
            body = []
            for _ in range(rng.randint(1, 3)):
                pred = rng.choice(["e", "e", "p", "q"])
                body.append(atom(pred, rng.choice(variables), rng.choice(variables)))
            bound = sorted({v.name for a in body for v in a.variables()})
            if not bound:
                continue
            head_terms = [
                rng.choice(bound) if rng.random() < 0.8 else rng.randrange(3)
                for _ in range(2)
            ]
            rules.append(Rule(atom(head_pred, *head_terms), body))
    if not rules:
        rules.append(Rule(atom("p", "X", "Y"), [atom("e", "X", "Y")]))
    return rules


def _random_edb(rng, num_constants=4, num_facts=6):
    facts = {
        (Constant(rng.randrange(num_constants)), Constant(rng.randrange(num_constants)))
        for _ in range(num_facts)
    }
    return Instance({"e": Relation(2, facts)})


@pytest.mark.slow
class TestGroundEngineProperties:
    @pytest.mark.parametrize("seed", range(60))
    def test_naive_equals_seminaive(self, seed):
        rng = random.Random(0x6E0 + seed)
        rules = _random_ground_program(rng)
        instance = _random_edb(rng)
        naive = naive_fixpoint(rules, instance)
        semi = seminaive_fixpoint(rules, instance)
        assert set(naive) == set(semi)
        for name in naive:
            assert naive[name] == semi[name], name

    @pytest.mark.parametrize("engine", ["naive", "seminaive"])
    def test_engines_agree_through_datalog_query(self, engine):
        rng = random.Random(0xE2E)
        instance = _random_edb(rng)
        rules = parse_datalog(transitive_closure_program()).rules
        query = DatalogQuery(rules, engine=engine)
        out = query(instance)
        gold = naive_fixpoint(rules, instance)
        assert set(out["TC"].facts) == gold["TC"]


# ---------------------------------------------------------------------------
# Fail-fast arity validation (regression: _arities ran with no schema)
# ---------------------------------------------------------------------------


class TestArityValidation:
    def test_call_rejects_schema_mismatch(self):
        query = DatalogQuery(parse_datalog(transitive_closure_program()).rules)
        bad = Instance({"edge": Relation(3, {(Constant(0), Constant(1), Constant(2))})})
        with pytest.raises(ValueError, match="instance relation has arity 3"):
            query(bad)

    def test_output_schema_rejects_schema_mismatch(self):
        query = DatalogQuery(parse_datalog(transitive_closure_program()).rules)
        bad = Instance({"edge": Relation(3, set())})
        with pytest.raises(ValueError, match="arity"):
            query.output_schema(bad.schema())

    def test_ctfixpoint_rejects_database_mismatch(self):
        program = CTFixpoint(parse_datalog(transitive_closure_program()))
        db = TableDatabase([CTable("edge", 3, [])])
        with pytest.raises(ValueError, match="arity"):
            program.run(db)


# ---------------------------------------------------------------------------
# Canonicalization and fingerprint units
# ---------------------------------------------------------------------------


class TestCanonicalCondition:
    def test_unsatisfiable_is_none(self):
        v = Variable("v")
        impossible = BoolAnd(
            (BoolAtom(Eq(v, Constant(0))), BoolAtom(Eq(v, Constant(1))))
        )
        assert canonical_condition(impossible) is None

    def test_disjunct_order_is_canonical(self):
        v = Variable("v")
        a = BoolAtom(Eq(v, Constant(0)))
        b = BoolAtom(Eq(v, Constant(1)))
        assert canonical_condition(BoolOr((a, b))) == canonical_condition(
            BoolOr((b, a))
        )

    def test_subsumed_disjunct_is_dropped(self):
        v, w = Variable("v"), Variable("w")
        weak = BoolAtom(Eq(v, Constant(0)))
        strong = BoolAnd((weak, BoolAtom(Eq(w, Constant(1)))))
        assert canonical_condition(BoolOr((weak, strong))) == canonical_condition(weak)


class TestDatalogFingerprint:
    def test_rule_order_is_irrelevant(self):
        a = "TC(X,Y) :- edge(X,Y). TC(X,Z) :- TC(X,Y), edge(Y,Z)."
        b = "TC(X,Z) :- TC(X,Y), edge(Y,Z). TC(X,Y) :- edge(X,Y)."
        assert datalog_fingerprint(parse_datalog(a)) == datalog_fingerprint(
            parse_datalog(b)
        )

    def test_output_choice_matters(self):
        text = transitive_closure_program() + " " + "P(X,Y) :- TC(X,Y)."
        rules = parse_datalog(text).rules
        assert datalog_fingerprint(
            DatalogQuery(rules, outputs=("TC",))
        ) != datalog_fingerprint(DatalogQuery(rules, outputs=("P",)))

    def test_accepts_fixpoint_and_query_alike(self):
        program = parse_datalog(transitive_closure_program())
        assert datalog_fingerprint(program) == datalog_fingerprint(
            CTFixpoint(program)
        )
