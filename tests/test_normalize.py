"""Tests for table normalisation (equality incorporation, simplification)."""

import pytest

from repro.core.conditions import BOOL_TRUE, Conjunction, Eq, Neq, TRUE
from repro.core.normalize import (
    UnsatisfiableTable,
    normalize_database,
    normalize_table,
    simplify_local_conditions,
)
from repro.core.tables import CTable, Row, TableDatabase, c_table, g_table
from repro.core.terms import Constant, Variable
from repro.core.worlds import enumerate_worlds
from repro.workloads import random_table

x, y, z = Variable("x"), Variable("y"), Variable("z")


class TestNormalizeTable:
    def test_equalities_incorporated(self):
        table = g_table("T", 2, [(x, y)], Conjunction([Eq(x, 1), Eq(y, z)]))
        out = normalize_table(table)
        assert out.rows[0].terms[0] == Constant(1)
        # y and z merged to one representative.
        assert isinstance(out.rows[0].terms[1], Variable)
        assert out.global_condition == TRUE

    def test_residual_inequalities_kept(self):
        table = g_table("T", 1, [(x,)], Conjunction([Eq(x, y), Neq(y, 1)]))
        out = normalize_table(table)
        assert out.global_condition.inequalities()
        assert not out.global_condition.equalities()

    def test_unsatisfiable_raises(self):
        table = g_table("T", 1, [(x,)], Conjunction([Eq(x, 1), Eq(x, 2)]))
        with pytest.raises(UnsatisfiableTable):
            normalize_table(table)

    def test_trivial_table_unchanged(self):
        table = CTable("T", 1, [(x,)])
        assert normalize_table(table) is table

    def test_rep_preserved(self, rng):
        from repro.core.worlds import canonicalize_instance

        for kind in ("g", "c"):
            for _ in range(8):
                table = random_table(rng, kind, rows=2, num_constants=2)
                db = TableDatabase.single(table)
                try:
                    normalised = TableDatabase.single(normalize_table(table))
                except UnsatisfiableTable:
                    assert enumerate_worlds(db) == set()
                    continue
                extra = db.constants()
                canon = lambda d: {
                    canonicalize_instance(w, extra)
                    for w in enumerate_worlds(d, extra_constants=extra)
                }
                assert canon(db) == canon(normalised)


class TestNormalizeDatabase:
    def test_cross_table_equalities(self):
        a = CTable("A", 1, [(x,)], Conjunction([Eq(x, y)]))
        b = CTable("B", 1, [(y,)], Conjunction([Eq(y, 5)]))
        out = normalize_database(TableDatabase([a, b]))
        assert out["A"].rows[0].terms == (Constant(5),)
        assert out["B"].rows[0].terms == (Constant(5),)

    def test_extra_condition_participates(self):
        a = CTable("A", 1, [(x,)])
        db = TableDatabase([a], extra_condition=Conjunction([Eq(x, 3)]))
        out = normalize_database(db)
        assert out["A"].rows[0].terms == (Constant(3),)

    def test_unsatisfiable_raises(self):
        a = CTable("A", 1, [(x,)], Conjunction([Eq(x, 1)]))
        b = CTable("B", 1, [(x,)], Conjunction([Eq(x, 2)]))
        with pytest.raises(UnsatisfiableTable):
            normalize_database(TableDatabase([a, b]))


class TestSimplifyLocalConditions:
    def test_unsatisfiable_disjunct_dropped(self):
        table = c_table("T", 1, [((1,), "u = 0, u = 1")])
        out = simplify_local_conditions(table)
        assert len(out.rows) == 0

    def test_condition_implied_by_global_removed(self):
        table = CTable(
            "T",
            1,
            [Row((1,), Conjunction([Neq(x, 5)]))],
            Conjunction([Eq(x, 0)]),
        )
        out = simplify_local_conditions(table)
        assert out.rows[0].condition == BOOL_TRUE

    def test_condition_conflicting_with_global_drops_row(self):
        table = CTable(
            "T",
            1,
            [Row((1,), Conjunction([Eq(x, 5)]))],
            Conjunction([Eq(x, 0)]),
        )
        out = simplify_local_conditions(table)
        assert len(out.rows) == 0

    def test_contingent_condition_kept(self):
        table = c_table("T", 1, [((1,), "u = 0")])
        out = simplify_local_conditions(table)
        assert out.rows[0].has_local_condition()

    def test_rep_preserved(self, rng):
        from repro.core.worlds import canonicalize_instance

        for _ in range(8):
            table = random_table(rng, "c", rows=3, num_constants=2)
            db = TableDatabase.single(table)
            simplified = TableDatabase.single(simplify_local_conditions(table))
            extra = db.constants()
            canon = lambda d: {
                canonicalize_instance(w, extra)
                for w in enumerate_worlds(d, extra_constants=extra)
            }
            assert canon(db) == canon(simplified)
