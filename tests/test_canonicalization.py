"""Tests for instance canonicalization (worlds.py helpers).

``canonicalize_instance`` is the cheap first-appearance renaming;
``strong_canonicalize`` is the exact (min-over-permutations) canonical
form.  The distinction matters when comparing world sets produced by
*different* representations of the same incomplete database, whose
canonical enumerations may use fresh constants in different positions.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Instance
from repro.core.terms import Constant
from repro.core.worlds import canonicalize_instance, strong_canonicalize


def C(v):
    return Constant(v)


class TestCanonicalizeInstance:
    def test_protected_constants_untouched(self):
        inst = Instance({"R": [(1, "a")]})
        out = canonicalize_instance(inst, {C(1), C("a")})
        assert out == inst

    def test_fresh_constants_renamed_in_order(self):
        inst = Instance({"R": [("f9", 0), ("f2", 1)]})
        out = canonicalize_instance(inst, {C(0), C(1)})
        # sorted facts: ("f2", 1) < ("f9", 0); first appearance renames f2
        assert (C("@n0"), C(1)) in out["R"]
        assert (C("@n1"), C(0)) in out["R"]

    def test_idempotent_on_its_own_output(self):
        inst = Instance({"R": [("x", "y"), ("y", "z")]})
        once = canonicalize_instance(inst, set())
        twice = canonicalize_instance(once, set())
        assert once == twice


class TestStrongCanonicalize:
    def test_no_free_constants_is_identity(self):
        inst = Instance({"R": [(1, 2)]})
        assert strong_canonicalize(inst, {C(1), C(2)}) is inst

    def test_isomorphic_instances_collide(self):
        # The pair that defeats first-appearance renaming: renaming flips
        # the sort order of the facts.
        a = Instance({"R": [("f0", "f0"), ("f1", 0)]})
        b = Instance({"R": [("f0", 0), ("f1", "f1")]})
        protected = {C(0)}
        assert canonicalize_instance(a, protected) != canonicalize_instance(
            b, protected
        )  # the weak form misses it...
        assert strong_canonicalize(a, protected) == strong_canonicalize(
            b, protected
        )  # ...the strong form identifies it

    def test_non_isomorphic_instances_stay_apart(self):
        a = Instance({"R": [("f0", "f0")]})
        b = Instance({"R": [("f0", "f1")]})
        assert strong_canonicalize(a, set()) != strong_canonicalize(b, set())

    def test_protected_break_symmetry(self):
        # ("f0" plays the role of 7) vs ("f0" plays the role of 8): with 7
        # and 8 protected the two are genuinely different.
        a = Instance({"R": [("f0", 7)]})
        b = Instance({"R": [("f0", 8)]})
        assert strong_canonicalize(a, {C(7), C(8)}) != strong_canonicalize(
            b, {C(7), C(8)}
        )

    def test_multi_relation(self):
        a = Instance({"R": [("u",)], "S": [("u", "v")]})
        b = Instance({"R": [("p",)], "S": [("p", "q")]})
        assert strong_canonicalize(a, set()) == strong_canonicalize(b, set())

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(st.sampled_from("abc"), st.sampled_from("abc")),
            min_size=0,
            max_size=4,
        ),
        st.permutations(["a", "b", "c"]),
    )
    def test_invariant_under_renaming(self, facts, perm):
        """The canonical form is the same for every renaming of the frees."""
        mapping = dict(zip("abc", perm))
        inst = Instance({"R": [(x, y) for x, y in facts]}) if facts else None
        if inst is None:
            return
        renamed = Instance(
            {"R": [(mapping[x], mapping[y]) for x, y in facts]}
        )
        assert strong_canonicalize(inst, set()) == strong_canonicalize(
            renamed, set()
        )

    def test_idempotent(self):
        inst = Instance({"R": [("x", "y"), ("z", "x")]})
        once = strong_canonicalize(inst, set())
        assert strong_canonicalize(once, set()) == once
