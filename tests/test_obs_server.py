"""Server-surface tests for the observability layer: ``GET /metrics``,
the enriched ``/stats``, trace-id propagation over HTTP and the worker
pool, the ``analyze`` query flag and the slow-query log.

The library-level pieces (registry, tracing, EXPLAIN ANALYZE walker)
are covered in ``tests/test_obs.py``.
"""

from __future__ import annotations

import json
import re
import threading
import urllib.request

import pytest

from repro.core.tables import TableDatabase, codd_table
from repro.io.jsonio import database_to_json, table_from_json
from repro.obs.tracing import TRACE_HEADER
from repro.server import ServerClient, make_server, start_in_thread


def graph_db(*edges):
    return TableDatabase.single(codd_table("R", 2, list(edges)))


def row_values(table):
    return {tuple(t.value for t in row.terms) for row in table.rows}


PATH_QUERY = "Q(X, Z) :- R(X, Y), R(Y, Z)."

#: A Prometheus text-format sample line: name{labels} value
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (NaN|[+-]?Inf|[0-9eE+.-]+)$"
)


def _make(**kwargs):
    server = make_server(port=0, **kwargs)
    start_in_thread(server)
    host, port = server.server_address[:2]
    return server, ServerClient(f"http://{host}:{port}")


@pytest.fixture
def served():
    server, client = _make()
    try:
        yield server, client
    finally:
        server.shutdown()
        server.server_close()


def create_graph(client, name="g", *extra_edges):
    edges = [("a", "b"), ("b", "c"), *extra_edges]
    return client.create_database(name, database_to_json(graph_db(*edges)))


# ---------------------------------------------------------------------------
# GET /metrics
# ---------------------------------------------------------------------------


class TestMetricsEndpoint:
    def test_metrics_serves_prometheus_text(self, served):
        server, client = served
        create_graph(client)
        client.query("g", PATH_QUERY)
        host, port = server.server_address[:2]
        with urllib.request.urlopen(f"http://{host}:{port}/metrics") as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"].startswith("text/plain")
            body = resp.read().decode("utf-8")
        for line in body.strip().splitlines():
            if line.startswith("#"):
                assert line.startswith("# HELP") or line.startswith("# TYPE"), line
            else:
                assert _SAMPLE_RE.match(line), line
        assert "repro_queries_total" in body
        assert "repro_request_latency_seconds" in body
        assert 'repro_db_version{db="g"}' in body
        assert "repro_condition_cache_total" in body

    def test_counters_move_with_traffic(self, served):
        _, client = served
        create_graph(client)

        def outcome_total(text):
            total = 0
            for line in text.splitlines():
                if line.startswith("repro_queries_total{"):
                    total += float(line.rsplit(" ", 1)[1])
            return total

        before = outcome_total(client.metrics())
        for _ in range(3):
            client.query("g", PATH_QUERY)
        after = outcome_total(client.metrics())
        assert after >= before + 3 * 2  # each query bumps queries + one rung

    def test_client_metrics_helper_returns_text(self, served):
        _, client = served
        assert "# TYPE" in client.metrics()

    def test_metrics_parse_under_concurrent_load(self, served):
        _, client = served
        create_graph(client)
        errors = []
        stop = threading.Event()

        def querier():
            while not stop.is_set():
                try:
                    client.query("g", PATH_QUERY)
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)
                    return

        def scraper():
            for _ in range(10):
                try:
                    text = client.metrics()
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)
                    return
                for line in text.strip().splitlines():
                    if not line.startswith("#") and not _SAMPLE_RE.match(line):
                        errors.append(AssertionError(line))
                        return

        threads = [threading.Thread(target=querier) for _ in range(3)]
        threads += [threading.Thread(target=scraper) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads[3:]:
            t.join()
        stop.set()
        for t in threads[:3]:
            t.join()
        assert not errors


# ---------------------------------------------------------------------------
# GET /stats enrichment
# ---------------------------------------------------------------------------


class TestStatsEnrichment:
    def test_stats_carries_per_db_telemetry(self, served):
        _, client = served
        create_graph(client)
        client.define_view("g", PATH_QUERY.replace("Q(", "V("))
        client.update("g", ["insert", "R", ["c", "d"]])
        client.query("g", PATH_QUERY)
        stats = client.stats()
        assert "slow_queries" in stats
        assert "conditions" in stats
        g = stats["databases"]["g"]
        assert g["version"] >= 1  # the insert bumped the snapshot version
        assert g["tables"] == 1
        assert g["views"]["count"] == 1
        assert "delta_rows" in g["views"]["counters"]
        assert isinstance(g["views"]["last_maintenance"], list)
        assert g["stats_store"]["table_collections"] >= 1
        assert "cached_tables" in g["stats_store"]

    def test_latency_summary_shape_is_unchanged(self, served):
        _, client = served
        create_graph(client)
        client.query("g", PATH_QUERY)
        latency = client.stats()["latency"]
        assert set(latency) == {"count", "window", "mean_ms", "p50_ms", "p99_ms"}
        assert latency["count"] >= 1


# ---------------------------------------------------------------------------
# Trace-id propagation
# ---------------------------------------------------------------------------


class TestTraceIds:
    def _raw_query(self, client, db, query, headers=None):
        payload = json.dumps({"query": query}).encode("utf-8")
        request = urllib.request.Request(
            client.base_url + f"/dbs/{db}/query",
            data=payload,
            headers={"Content-Type": "application/json", **(headers or {})},
            method="POST",
        )
        with urllib.request.urlopen(request) as resp:
            return resp.headers, json.loads(resp.read())

    def test_server_mints_an_id_when_absent(self, served):
        _, client = served
        create_graph(client)
        headers, body = self._raw_query(client, "g", PATH_QUERY)
        assert re.match(r"^[0-9a-f]{16}$", body["trace_id"])
        assert headers[TRACE_HEADER] == body["trace_id"]

    def test_client_id_is_echoed(self, served):
        _, client = served
        create_graph(client)
        headers, body = self._raw_query(
            client, "g", PATH_QUERY, headers={TRACE_HEADER: "my-trace.001"}
        )
        assert body["trace_id"] == "my-trace.001"
        assert headers[TRACE_HEADER] == "my-trace.001"

    def test_malformed_id_is_replaced(self, served):
        _, client = served
        create_graph(client)
        _, body = self._raw_query(
            client, "g", PATH_QUERY, headers={TRACE_HEADER: "bad id with spaces"}
        )
        assert body["trace_id"] != "bad id with spaces"
        assert re.match(r"^[0-9a-f]{16}$", body["trace_id"])

    def test_server_client_passes_trace_id(self, served):
        _, client = served
        create_graph(client)
        response = client.query("g", PATH_QUERY, trace_id="client-abc")
        assert response["trace_id"] == "client-abc"

    def test_concurrent_queries_never_cross_contaminate(self, served):
        _, client = served
        create_graph(client)
        results = {}
        errors = []

        def worker(i):
            try:
                for j in range(5):
                    wanted = f"t{i}-{j}"
                    response = client.query("g", PATH_QUERY, trace_id=wanted)
                    if response["trace_id"] != wanted:
                        errors.append((wanted, response["trace_id"]))
                results[i] = True
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(results) == 6


class TestTraceIdsOverWorkerPool:
    @pytest.fixture
    def pooled(self):
        server, client = _make(workers=1, cache_size=0)
        try:
            yield server, client
        finally:
            server.shutdown()
            server.server_close()

    def test_pool_round_trips_the_trace_id(self, pooled):
        _, client = pooled
        create_graph(client)
        response = client.query("g", PATH_QUERY, trace_id="pool-trace-1")
        assert response["served_by"] == "pool"
        assert response["trace_id"] == "pool-trace-1"
        assert row_values(table_from_json(response["table"])) == {("a", "c")}


# ---------------------------------------------------------------------------
# The analyze flag over HTTP
# ---------------------------------------------------------------------------


class TestAnalyzeFlag:
    def test_analyze_payload_matches_result(self, served):
        _, client = served
        create_graph(client)
        response = client.query("g", PATH_QUERY, analyze=True)
        assert response["served_by"] == "inline"
        analyze = response["analyze"]
        assert analyze["kind"] == "plan"
        assert analyze["root"]["actual_rows"] == response["rows"]
        assert analyze["root"]["est_rows"] is not None
        assert analyze["total_ms"] >= 0.0

    def test_analyze_is_never_cached(self, served):
        _, client = served
        create_graph(client)
        first = client.query("g", PATH_QUERY, analyze=True)
        second = client.query("g", PATH_QUERY, analyze=True)
        assert first["served_by"] == "inline"
        assert second["served_by"] == "inline"  # not "cache"
        # ...and analyze traffic does not poison the cache for normal queries
        plain = client.query("g", PATH_QUERY)
        assert plain["served_by"] in ("inline", "cache")
        assert "analyze" not in plain

    def test_datalog_analyze_reports_rounds(self, served):
        _, client = served
        create_graph(client, "g", ("c", "d"))
        response = client.query(
            "g",
            "T(X, Y) :- R(X, Y). T(X, Z) :- T(X, Y), R(Y, Z).",
            datalog=True,
            analyze=True,
        )
        analyze = response["analyze"]
        assert analyze["kind"] == "datalog"
        assert [r["round"] for r in analyze["rounds"]] == list(
            range(1, len(analyze["rounds"]) + 1)
        )
        assert all(r["ms"] >= 0.0 for r in analyze["rounds"])


# ---------------------------------------------------------------------------
# The slow-query log over HTTP
# ---------------------------------------------------------------------------


class TestSlowQueryLog:
    @pytest.fixture
    def slow_served(self):
        server, client = _make(slow_query_ms=0.0)
        try:
            yield server, client
        finally:
            server.shutdown()
            server.server_close()

    def test_threshold_zero_logs_everything(self, slow_served, capfd):
        _, client = slow_served
        create_graph(client)
        response = client.query("g", PATH_QUERY, trace_id="slow-1")
        slow = client.stats()["slow_queries"]
        assert slow["enabled"] is True
        assert slow["threshold_ms"] == 0.0
        assert slow["total"] >= 1
        entry = slow["recent"][0]
        assert entry["db"] == "g"
        assert entry["served_by"] == response["served_by"]
        assert entry["trace_id"] == "slow-1"
        assert "slow query" in capfd.readouterr().err

    def test_disabled_by_default(self, served):
        _, client = served
        create_graph(client)
        client.query("g", PATH_QUERY)
        slow = client.stats()["slow_queries"]
        assert slow["enabled"] is False
        assert slow["total"] == 0
