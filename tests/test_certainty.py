"""Tests for the certainty problem (Theorem 5.3, Proposition 2.1(5,6))."""

import pytest

from oracles import oracle_certain
from repro.core.certainty import (
    certain_enumerate,
    certain_identity,
    certain_positive_gtable,
    certain_ucq_view,
    is_certain,
)
from repro.core.conditions import Conjunction, Eq, Neq
from repro.core.tables import CTable, TableDatabase, c_table, codd_table, e_table, g_table
from repro.core.terms import Variable
from repro.queries import DatalogQuery, UCQQuery, atom, cq
from repro.relational.instance import Instance, Relation
from repro.workloads import random_subinstance, random_table, random_world

x, y = Variable("x"), Variable("y")


class TestIdentityCertainty:
    def test_ground_fact_certain(self):
        table = codd_table("T", 1, [(1,), ("?a",)])
        db = TableDatabase.single(table)
        assert certain_identity(Instance({"T": [(1,)]}), db)

    def test_variable_fact_not_certain(self):
        table = codd_table("T", 1, [("?a",)])
        db = TableDatabase.single(table)
        assert not certain_identity(Instance({"T": [(1,)]}), db)

    def test_pinned_variable_certain(self):
        table = g_table("T", 1, [("?a",)], Conjunction([Eq(Variable("a"), 1)]))
        db = TableDatabase.single(table)
        assert certain_identity(Instance({"T": [(1,)]}), db)

    def test_certain_by_case_split(self):
        table = c_table("T", 1, [((1,), "u = 0"), ((1,), "u != 0")])
        db = TableDatabase.single(table)
        assert certain_identity(Instance({"T": [(1,)]}), db)

    def test_conditioned_row_not_certain(self):
        table = c_table("T", 1, [((1,), "u = 0")])
        db = TableDatabase.single(table)
        assert not certain_identity(Instance({"T": [(1,)]}), db)

    def test_unsatisfiable_global_everything_certain(self):
        table = g_table("T", 1, [(1,)], Conjunction([Eq(x, 1), Neq(x, 1)]))
        db = TableDatabase.single(table)
        assert certain_identity(Instance({"T": [(9,)]}), db)

    def test_unknown_relation_not_certain(self):
        table = codd_table("T", 1, [(1,)])
        db = TableDatabase.single(table)
        assert not certain_identity(Instance({"S": [(1,)]}), db)

    def test_agrees_with_oracle(self, rng):
        for kind in ("codd", "e", "i", "g", "c"):
            for _ in range(10):
                table = random_table(rng, kind, rows=3, num_constants=3)
                db = TableDatabase.single(table)
                request = random_subinstance(rng, random_world(rng, db), keep=0.5)
                assert certain_identity(request, db) == oracle_certain(request, db)

    def test_cert_star_equals_cert_one(self, rng):
        """Proposition 2.1(6): a set is certain iff each fact is."""
        for _ in range(10):
            table = random_table(rng, "c", rows=3, num_constants=3)
            db = TableDatabase.single(table)
            request = random_subinstance(rng, random_world(rng, db), keep=0.7)
            per_fact = all(
                certain_identity(Instance({name: Relation(request[name].arity, [f])}), db)
                for name in request.names()
                for f in request[name].facts
            )
            assert certain_identity(request, db) == per_fact


class TestMatrixEvaluation:
    """Theorem 5.3(1): positive queries on g-tables via the frozen matrix."""

    def _tc_query(self):
        return DatalogQuery(
            [
                cq(atom("T", "X", "Y"), atom("E", "X", "Y")),
                cq(atom("T", "X", "Z"), atom("T", "X", "Y"), atom("E", "Y", "Z")),
            ],
            outputs=["T"],
        )

    def test_certain_reachability_through_nulls(self):
        # E = {(1, x), (x, 3)}: 1 reaches 3 in every world.
        table = e_table("E", 2, [(1, "?x"), ("?x", 3)])
        db = TableDatabase.single(table)
        assert certain_positive_gtable(
            Instance({"T": [(1, 3)]}), db, self._tc_query()
        )

    def test_uncertain_when_nulls_differ(self):
        table = codd_table("E", 2, [(1, "?x"), ("?y", 3)])
        db = TableDatabase.single(table)
        assert not certain_positive_gtable(
            Instance({"T": [(1, 3)]}), db, self._tc_query()
        )

    def test_inequalities_only_remove_worlds(self):
        table = g_table(
            "E", 2, [(1, "?x"), ("?x", 3)], Conjunction([Neq(Variable("x"), 7)])
        )
        db = TableDatabase.single(table)
        assert certain_positive_gtable(
            Instance({"T": [(1, 3)]}), db, self._tc_query()
        )

    def test_ucq_also_accepted(self):
        q = UCQQuery([cq(atom("Q", "A"), atom("E", "A", "B"))])
        table = e_table("E", 2, [(1, "?x")])
        db = TableDatabase.single(table)
        assert certain_positive_gtable(Instance({"Q": [(1,)]}), db, q)

    def test_rejects_nonpositive_query(self):
        q = UCQQuery(
            [cq(atom("Q", "A"), atom("E", "A", "B"), where=[Neq(Variable("A"), 1)])]
        )
        table = e_table("E", 2, [(1, 2)])
        with pytest.raises(ValueError):
            certain_positive_gtable(
                Instance({"Q": [(1,)]}), TableDatabase.single(table), q
            )

    def test_rejects_ctable(self):
        q = UCQQuery([cq(atom("Q", "A"), atom("E", "A", "B"))])
        table = c_table("E", 2, [((1, 2), "u = 0")])
        with pytest.raises(ValueError):
            certain_positive_gtable(
                Instance({"Q": [(1,)]}), TableDatabase.single(table), q
            )

    def test_agrees_with_enumeration(self, rng):
        q = UCQQuery([cq(atom("Q", "A"), atom("R", "A", "B"))])
        for kind in ("codd", "e", "g"):
            for _ in range(8):
                table = random_table(rng, kind, name="R", rows=3, num_constants=3)
                db = TableDatabase.single(table)
                request = random_subinstance(rng, q(random_world(rng, db)), keep=0.5)
                assert certain_positive_gtable(request, db, q) == certain_enumerate(
                    request, db, q
                )


class TestUCQViewCertainty:
    def test_view_certainty_on_ctable(self):
        q = UCQQuery([cq(atom("Q", "B"), atom("R", "A", "B"))])
        table = c_table("R", 2, [((1, 5), "u = 0"), ((2, 5), "u != 0")])
        db = TableDatabase.single(table)
        # (5) appears through one row or the other in every world.
        assert certain_ucq_view(Instance({"Q": [(5,)]}), db, q)
        assert is_certain(Instance({"Q": [(5,)]}), db, q)

    def test_view_certainty_negative(self):
        q = UCQQuery([cq(atom("Q", "B"), atom("R", "A", "B"))])
        table = c_table("R", 2, [((1, 5), "u = 0")])
        db = TableDatabase.single(table)
        assert not is_certain(Instance({"Q": [(5,)]}), db, q)


class TestDispatch:
    def test_method_forcing(self):
        table = codd_table("T", 1, [(1,)])
        db = TableDatabase.single(table)
        request = Instance({"T": [(1,)]})
        assert is_certain(request, db, method="identity")
        assert is_certain(request, db, method="enumerate")
        with pytest.raises(ValueError):
            is_certain(request, db, method="bogus")

    def test_certainty_implies_possibility(self, rng):
        from repro.core.possibility import is_possible

        for _ in range(10):
            table = random_table(rng, "c", rows=3, num_constants=3)
            db = TableDatabase.single(table)
            request = random_subinstance(rng, random_world(rng, db), keep=0.5)
            if is_certain(request, db):
                assert is_possible(request, db)
