"""Differential tests: hash-partitioned intersect/difference vs pairwise.

``intersect_ct`` and ``difference_ct`` now bucket constant-ground rows by
their full term tuple and only pair variable-bearing rows against the
whole other side.  The pairwise O(|L| x |R|) originals are kept as
``intersect_ct_pairwise`` / ``difference_ct_pairwise`` and used here as
oracles: on every random (left, right) pair the partitioned operator must
represent exactly the same set of worlds.  Hand-picked cases cover the
partition boundaries — all-ground, all-variable and mixed tables, dead
rows, and rows whose match is decided purely by conditions.
"""

from __future__ import annotations

import random

import pytest

from repro.core.conditions import Conjunction, Neq
from repro.core.tables import CTable, TableDatabase, c_table
from repro.core.terms import Constant, Variable
from repro.core.worlds import enumerate_worlds, strong_canonicalize
from repro.ctalgebra.operators import (
    difference_ct,
    difference_ct_pairwise,
    intersect_ct,
    intersect_ct_pairwise,
)
from repro.workloads import random_table

x, y = Variable("x"), Variable("y")

OPERATORS = [
    pytest.param(intersect_ct, intersect_ct_pairwise, id="intersect"),
    pytest.param(difference_ct, difference_ct_pairwise, id="difference"),
]


def _rep(table, extra):
    worlds = enumerate_worlds(TableDatabase.single(table), extra_constants=extra)
    return {strong_canonicalize(w, extra) for w in worlds}


def assert_partitioned_matches_pairwise(partitioned, pairwise, left, right):
    fast = partitioned(left, right, name="V")
    slow = pairwise(left, right, name="V")
    assert fast.arity == slow.arity
    extra = sorted(
        TableDatabase([left, right]).constants(), key=Constant.sort_key
    ) or [Constant(0)]
    assert _rep(fast, extra) == _rep(slow, extra)


@pytest.mark.parametrize("partitioned,pairwise", OPERATORS)
class TestHandPickedBoundaries:
    def test_all_ground_tables(self, partitioned, pairwise):
        left = CTable("R", 2, [(1, 2), (3, 4), (5, 6)])
        right = CTable("S", 2, [(1, 2), (5, 6), (7, 8)])
        assert_partitioned_matches_pairwise(partitioned, pairwise, left, right)

    def test_ground_rows_use_buckets_only(self, partitioned, pairwise):
        # No shared tuples and no variables: the partitioned operator must
        # behave like the pairwise one even when every bucket probe misses.
        left = CTable("R", 1, [(1,), (2,)])
        right = CTable("S", 1, [(3,), (4,)])
        assert_partitioned_matches_pairwise(partitioned, pairwise, left, right)

    def test_variable_only_tables(self, partitioned, pairwise):
        left = CTable("R", 1, [(x,)])
        right = CTable("S", 1, [(y,)])
        assert_partitioned_matches_pairwise(partitioned, pairwise, left, right)

    def test_mixed_ground_and_variable_rows(self, partitioned, pairwise):
        left = CTable("R", 2, [(1, 2), (x, 2), (3, y)])
        right = CTable("S", 2, [(1, 2), (x, x), (3, 0)])
        assert_partitioned_matches_pairwise(partitioned, pairwise, left, right)

    def test_wild_left_row_sees_every_right_row(self, partitioned, pairwise):
        left = CTable("R", 1, [(x,)])
        right = CTable("S", 1, [(1,), (2,), (3,)])
        assert_partitioned_matches_pairwise(partitioned, pairwise, left, right)

    def test_wild_right_row_reaches_ground_left_rows(self, partitioned, pairwise):
        left = CTable("R", 1, [(1,), (2,)])
        right = CTable("S", 1, [(y,)])
        assert_partitioned_matches_pairwise(partitioned, pairwise, left, right)

    def test_dead_rows_are_inert(self, partitioned, pairwise):
        left = c_table("R", 1, [((1,), "x != x"), ((2,),)])
        right = c_table("S", 1, [((2,), "y != y"), ((1,),)])
        assert_partitioned_matches_pairwise(partitioned, pairwise, left, right)

    def test_condition_bearing_matches(self, partitioned, pairwise):
        left = c_table("R", 1, [((1,), "x = 0"), ((2,),)])
        right = c_table("S", 1, [((1,), "x != 1"), ((2,), "y = 2")])
        assert_partitioned_matches_pairwise(partitioned, pairwise, left, right)

    def test_global_conditions_conjoined(self, partitioned, pairwise):
        left = CTable("R", 1, [(x,)], Conjunction([Neq(x, 0)]))
        right = CTable("S", 1, [(1,)], Conjunction([Neq(x, 2)]))
        fast = partitioned(left, right)
        assert fast.global_condition == Conjunction([Neq(x, 0), Neq(x, 2)])
        assert_partitioned_matches_pairwise(partitioned, pairwise, left, right)

    def test_empty_sides(self, partitioned, pairwise):
        empty = CTable("R", 2, [])
        full = CTable("S", 2, [(1, 2)])
        assert_partitioned_matches_pairwise(partitioned, pairwise, empty, full)
        assert_partitioned_matches_pairwise(partitioned, pairwise, full, empty)

    def test_arity_mismatch_raises(self, partitioned, pairwise):
        with pytest.raises(ValueError):
            partitioned(CTable("R", 1, [(1,)]), CTable("S", 2, [(1, 2)]))


@pytest.mark.parametrize("partitioned,pairwise", OPERATORS)
class TestRandomizedDifferential:
    def test_random_tables_all_kinds(self, partitioned, pairwise):
        # 30 seeds x 3 kinds = 90 cases per operator (180 total), spanning
        # ground-only Codd tables through condition-bearing c-tables.
        for seed in range(30):
            rng = random.Random(0x5E7 + seed)
            for kind in ("codd", "e", "c"):
                kwargs = {} if kind == "codd" else {"num_variables": 2}
                left = random_table(
                    rng, kind, name="R", rows=3, arity=2, num_constants=3, **kwargs
                )
                right = random_table(
                    rng, kind, name="S", rows=3, arity=2, num_constants=3, **kwargs
                )
                assert_partitioned_matches_pairwise(
                    partitioned, pairwise, left, right
                )

    def test_ground_heavy_tables_share_tuples(self, partitioned, pairwise):
        # Draw both sides from a tiny constant pool so bucket hits happen.
        for seed in range(20):
            rng = random.Random(0xA11 + seed)
            rows = lambda: [
                (rng.randrange(2), rng.randrange(2)) for _ in range(4)
            ]
            left = CTable("R", 2, rows())
            right = CTable("S", 2, rows())
            assert_partitioned_matches_pairwise(partitioned, pairwise, left, right)
