"""Machine checks of the Theorem 3.2(3,4) reductions."""

import pytest

from repro.reductions import (
    ctable_uniqueness,
    decide_noncolorable_via_view,
    decide_tautology_via_ctable,
    view_uniqueness,
)
from repro.solvers import (
    DNF,
    complete_graph,
    cycle_graph,
    example_formula_fig5,
    example_graph_fig4a,
    is_colorable,
    is_tautology_dnf,
    random_dnf,
    random_graph,
)


class TestCTableTautology:
    """Theorem 3.2(3): 3DNF tautology as c-table uniqueness."""

    def test_excluded_middle_is_tautology(self):
        assert decide_tautology_via_ctable(DNF([(1,), (-1,)]))

    def test_fig5_dnf_not_tautology(self):
        _, dnf, _ = example_formula_fig5()
        assert not decide_tautology_via_ctable(dnf)

    def test_single_term_never_tautology(self):
        assert not decide_tautology_via_ctable(DNF([(1, 2, 3)]))

    def test_wider_tautology(self):
        # (x1 & x2) | (-x1) | (x1 & -x2) covers everything.
        assert decide_tautology_via_ctable(DNF([(1, 2), (-1,), (1, -2)]))

    def test_random(self, rng):
        for _ in range(10):
            dnf = random_dnf(3, rng.randint(1, 6), rng)
            assert decide_tautology_via_ctable(dnf) == is_tautology_dnf(dnf)

    def test_construction_shape(self):
        _, dnf, _ = example_formula_fig5()
        reduction = ctable_uniqueness(dnf)
        table = reduction.db["T"]
        assert table.classify() == "c"
        assert len(table.rows) == len(dnf.clauses)
        assert all(row.terms == (row.terms[0],) for row in table.rows)


class TestViewNonColorability:
    """Theorem 3.2(4), Figure 6: non-3-colorability as view uniqueness."""

    @pytest.mark.parametrize(
        "graph",
        [example_graph_fig4a(), complete_graph(3), complete_graph(4), cycle_graph(4)],
        ids=repr,
    )
    def test_structured(self, graph):
        assert decide_noncolorable_via_view(graph) == (not is_colorable(graph, 3))

    def test_random(self, rng):
        for _ in range(6):
            graph = random_graph(4, 0.6, rng)
            assert decide_noncolorable_via_view(graph) == (
                not is_colorable(graph, 3)
            )

    def test_construction_shape(self):
        reduction = view_uniqueness(example_graph_fig4a())
        table = reduction.db["R"]
        assert table.classify() == "codd"
        # One row per edge plus one per node.
        assert len(table.rows) == 5 + 5
        # The query is positive existential *with* inequality conditions.
        assert not reduction.query.is_positive_existential()
