"""Tests for repro.io: text and JSON serialization round-trips."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    CTable,
    Conjunction,
    Eq,
    Instance,
    Neq,
    Row,
    TableDatabase,
    Variable,
    c_table,
    codd_table,
    e_table,
    enumerate_worlds,
    g_table,
    i_table,
)
from repro.core.conditions import BoolAnd, BoolAtom, BoolOr
from repro.core.terms import Constant
from repro.io import (
    TextFormatError,
    database_from_json,
    database_to_json,
    dumps_database,
    dumps_instance,
    instance_from_json,
    instance_to_json,
    json_dumps,
    json_loads,
    load_database,
    load_instance,
    loads_database,
    loads_instance,
    table_from_json,
    table_to_json,
)
from repro.io.text import (
    dump_database,
    dump_instance,
    format_term,
    parse_term_token,
)


def fig1_ctable() -> CTable:
    """The paper's Figure 1(e) c-table Te."""
    return c_table(
        "R",
        3,
        [
            ((0, 1, "?z"), "z = z"),
            ((0, "?x", "?y"), "y = 0"),
            (("?y", "?x", 1), "x != y"),
        ],
        "x != 1, y != 2",
    )


def sample_database() -> TableDatabase:
    return TableDatabase(
        [
            fig1_ctable(),
            i_table("S", 2, [(0, "?u"), ("?v", 1)], "u != v"),
        ],
        Conjunction([Neq(Variable("u"), Variable("x"))]),
    )


# ---------------------------------------------------------------------------
# Term tokens
# ---------------------------------------------------------------------------


class TestTermTokens:
    def test_variable(self):
        assert parse_term_token("?x") == Variable("x")
        assert format_term(Variable("x")) == "?x"

    def test_int(self):
        assert parse_term_token("12") == Constant(12)
        assert format_term(Constant(12)) == "12"

    def test_negative_int(self):
        assert parse_term_token("-3") == Constant(-3)

    def test_float(self):
        assert parse_term_token("1.5") == Constant(1.5)
        assert format_term(Constant(1.5)) == "1.5"

    def test_quoted_string(self):
        assert parse_term_token('"abc"') == Constant("abc")
        assert format_term(Constant("abc")) == '"abc"'

    def test_string_looking_like_int_stays_distinct(self):
        # str "12" and int 12 are different constants; quoting disambiguates.
        assert format_term(Constant("12")) == '"12"'
        assert parse_term_token('"12"') == Constant("12")
        assert parse_term_token('"12"') != Constant(12)

    def test_bare_word_is_string_constant(self):
        assert parse_term_token("alice") == Constant("alice")

    def test_bool_payload(self):
        token = format_term(Constant(True))
        assert parse_term_token(token) == Constant(True)
        assert parse_term_token(token) != Constant(1)

    def test_quote_escapes(self):
        value = 'he said "hi\\"'
        token = format_term(Constant(value))
        assert parse_term_token(token) == Constant(value)

    def test_empty_token_rejected(self):
        with pytest.raises(TextFormatError):
            parse_term_token("")

    def test_bare_question_mark_rejected(self):
        with pytest.raises(TextFormatError):
            parse_term_token("?")

    def test_exotic_payload_rejected(self):
        with pytest.raises(TextFormatError):
            format_term(Constant((1, 2)))


# ---------------------------------------------------------------------------
# Database text round-trips
# ---------------------------------------------------------------------------


class TestDatabaseText:
    def test_roundtrip_codd(self):
        db = TableDatabase.single(codd_table("R", 2, [(0, "?x"), ("?y", 1)]))
        assert loads_database(dumps_database(db)) == db

    def test_roundtrip_e_table(self):
        db = TableDatabase.single(e_table("R", 2, [("?x", "?x"), (0, "?y")]))
        assert loads_database(dumps_database(db)) == db

    def test_roundtrip_i_table(self):
        db = TableDatabase.single(
            i_table("R", 1, [("?x",), ("?y",)], "x != y, x != 3")
        )
        assert loads_database(dumps_database(db)) == db

    def test_roundtrip_g_table(self):
        db = TableDatabase.single(
            g_table("R", 2, [("?x", "?x"), ("?y", 0)], "x != y")
        )
        assert loads_database(dumps_database(db)) == db

    def test_roundtrip_c_table_figure1(self):
        db = TableDatabase.single(fig1_ctable())
        assert loads_database(dumps_database(db)) == db

    def test_roundtrip_trivial_local_condition(self):
        # z = z is the paper's encoding of "true"; it must survive verbatim.
        db = TableDatabase.single(c_table("R", 1, [((0,), "z = z")]))
        text = dumps_database(db)
        assert "z = z" in text
        assert loads_database(text) == db

    def test_roundtrip_multi_table_with_extra_condition(self):
        db = sample_database()
        assert loads_database(dumps_database(db)) == db

    def test_roundtrip_string_constants(self):
        db = TableDatabase.single(
            c_table(
                "People",
                2,
                [(("alice", "?d"), Conjunction([Neq(Variable("d"), Constant("unknown"))]))],
            )
        )
        assert loads_database(dumps_database(db)) == db

    def test_roundtrip_disjunctive_local_condition_preserves_rep(self):
        cond = BoolOr(
            (
                BoolAtom(Eq(Variable("x"), Constant(0))),
                BoolAtom(Eq(Variable("x"), Constant(1))),
            )
        )
        db = TableDatabase.single(CTable("R", 1, [Row((Variable("x"),), cond)]))
        back = loads_database(dumps_database(db))
        assert enumerate_worlds(back) == enumerate_worlds(db)

    def test_header_comment_emitted_and_ignored(self):
        db = TableDatabase.single(codd_table("R", 1, [(0,)]))
        text = dumps_database(db, header="Figure 1(a)\nsecond line")
        assert text.startswith("# Figure 1(a)")
        assert loads_database(text) == db

    def test_comments_and_blank_lines_ignored(self):
        text = """
        # a comment
        %database

        %table R/2
        # another comment
        0 ?x   # trailing comment
        """
        db = loads_database(text)
        assert db["R"].rows == (Row((Constant(0), Variable("x"))),)

    def test_hash_inside_quotes_kept(self):
        text = '%database\n%table R/1\n"a#b"\n'
        db = loads_database(text)
        assert db["R"].rows == (Row((Constant("a#b"),)),)

    def test_empty_table_roundtrip(self):
        db = TableDatabase.single(CTable("R", 2, []))
        assert loads_database(dumps_database(db)) == db

    def test_file_helpers(self, tmp_path):
        db = sample_database()
        path = tmp_path / "db.pwt"
        with open(path, "w") as fp:
            dump_database(db, fp)
        with open(path) as fp:
            assert load_database(fp) == db


class TestDatabaseTextErrors:
    def test_wrong_arity_row(self):
        with pytest.raises(TextFormatError, match="expects 2"):
            loads_database("%database\n%table R/2\n0 1 2\n")

    def test_row_outside_table(self):
        with pytest.raises(TextFormatError, match="outside"):
            loads_database("%database\n0 1\n")

    def test_global_outside_table(self):
        with pytest.raises(TextFormatError, match="outside"):
            loads_database("%database\n%global x != y\n")

    def test_unknown_directive(self):
        with pytest.raises(TextFormatError, match="unknown directive"):
            loads_database("%database\n%frobnicate\n")

    def test_bad_table_spec(self):
        with pytest.raises(TextFormatError, match="NAME/ARITY"):
            loads_database("%database\n%table R\n")

    def test_bad_condition(self):
        with pytest.raises(TextFormatError, match="line 3"):
            loads_database("%database\n%table R/1\n0 :: x < y\n")

    def test_unterminated_quote(self):
        with pytest.raises(TextFormatError, match="unterminated"):
            loads_database('%database\n%table R/1\n"abc\n')

    def test_empty_input(self):
        with pytest.raises(TextFormatError, match="not a database"):
            loads_database("")

    def test_error_carries_line_number(self):
        try:
            loads_database("%database\n%table R/1\n0 1\n")
        except TextFormatError as exc:
            assert exc.line == 3
        else:  # pragma: no cover
            pytest.fail("expected TextFormatError")


# ---------------------------------------------------------------------------
# Instance text round-trips
# ---------------------------------------------------------------------------


class TestInstanceText:
    def test_roundtrip_simple(self):
        inst = Instance({"R": [(0, 1), (2, 3)], "S": [(1,)]})
        assert loads_instance(dumps_instance(inst)) == inst

    def test_roundtrip_empty_relation(self):
        from repro.relational.instance import Relation

        inst = Instance({"R": Relation(2)})
        assert loads_instance(dumps_instance(inst)) == inst

    def test_roundtrip_string_values(self):
        inst = Instance({"R": [("alice", 30), ("bob", 31)]})
        assert loads_instance(dumps_instance(inst)) == inst

    def test_variables_rejected_in_facts(self):
        with pytest.raises(TextFormatError, match="constants only"):
            loads_instance("%instance\n%relation R/1\n?x\n")

    def test_wrong_arity_fact(self):
        with pytest.raises(TextFormatError, match="expects 2"):
            loads_instance("%instance\n%relation R/2\n0\n")

    def test_fact_outside_relation(self):
        with pytest.raises(TextFormatError, match="outside"):
            loads_instance("%instance\n0 1\n")

    def test_empty_input(self):
        with pytest.raises(TextFormatError, match="not an instance"):
            loads_instance("")

    def test_file_helpers(self, tmp_path):
        inst = Instance({"R": [(0, 1)]})
        path = tmp_path / "world.pwi"
        with open(path, "w") as fp:
            dump_instance(inst, fp, header="one world")
        with open(path) as fp:
            assert load_instance(fp) == inst


# ---------------------------------------------------------------------------
# JSON round-trips
# ---------------------------------------------------------------------------


class TestJson:
    def test_table_roundtrip(self):
        table = fig1_ctable()
        assert table_from_json(table_to_json(table)) == table

    def test_database_roundtrip(self):
        db = sample_database()
        assert database_from_json(database_to_json(db)) == db

    def test_instance_roundtrip(self):
        inst = Instance({"R": [(0, 1)], "S": [("alice",)]})
        assert instance_from_json(instance_to_json(inst)) == inst

    def test_boolean_tree_roundtrip_is_structural(self):
        cond = BoolAnd(
            (
                BoolOr(
                    (
                        BoolAtom(Eq(Variable("x"), Constant(0))),
                        BoolAtom(Neq(Variable("y"), Variable("x"))),
                    )
                ),
                BoolAtom(Eq(Variable("z"), Constant("a"))),
            )
        )
        table = CTable("R", 1, [Row((Variable("x"),), cond)])
        back = table_from_json(table_to_json(table))
        assert back.rows[0].condition == cond

    def test_payload_types_distinguished(self):
        inst = Instance({"R": [(1,), (1.0,), (True,), ("1",)]})
        back = instance_from_json(instance_to_json(inst))
        assert back == inst
        assert len(back["R"]) == 4

    def test_json_dumps_loads_database(self):
        db = sample_database()
        text = json_dumps(db)
        json.loads(text)  # well-formed JSON
        assert json_loads(text) == db

    def test_json_dumps_loads_table(self):
        table = fig1_ctable()
        assert json_loads(json_dumps(table)) == table

    def test_json_dumps_loads_instance(self):
        inst = Instance({"R": [(0, 1)]})
        assert json_loads(json_dumps(inst)) == inst

    def test_json_dumps_rejects_unknown(self):
        with pytest.raises(TypeError):
            json_dumps(42)

    def test_json_loads_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown kind"):
            json_loads('{"kind": "mystery"}')

    def test_json_loads_rejects_non_object(self):
        with pytest.raises(ValueError, match="object"):
            json_loads("[1, 2]")

    def test_unserialisable_payload_rejected(self):
        table = CTable("R", 1, [Row((Constant((1, 2)),))])
        with pytest.raises(TypeError, match="not JSON-serialisable"):
            table_to_json(table)


# ---------------------------------------------------------------------------
# Property-based round-trips
# ---------------------------------------------------------------------------

_constants = st.one_of(
    st.integers(-50, 50),
    st.text(
        alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd")),
        min_size=0,
        max_size=6,
    ),
).map(Constant)

_variables = st.sampled_from([Variable(n) for n in "uvwxyz"])

_terms = st.one_of(_constants, _variables)

_atoms = st.builds(
    lambda cls, a, b: cls(a, b),
    st.sampled_from([Eq, Neq]),
    _terms,
    _terms,
)

_conjunctions = st.lists(_atoms, max_size=3).map(Conjunction)


@st.composite
def _ctables(draw):
    arity = draw(st.integers(1, 3))
    n_rows = draw(st.integers(0, 4))
    rows = []
    for _ in range(n_rows):
        terms = [draw(_terms) for _ in range(arity)]
        cond = draw(st.one_of(st.none(), _conjunctions))
        rows.append(Row(terms, None if cond is None else cond))
    global_cond = draw(_conjunctions)
    return CTable("R", arity, rows, global_cond)


# A deliberately small variant for properties that enumerate rep(T):
# canonical-valuation counts are exponential in the variable count, so the
# world-set comparisons cap variables at 3 and constants at 4.
_small_constants = st.integers(0, 3).map(Constant)
_small_terms = st.one_of(
    _small_constants, st.sampled_from([Variable(n) for n in "xyz"])
)
_small_atoms = st.builds(
    lambda cls, a, b: cls(a, b), st.sampled_from([Eq, Neq]), _small_terms, _small_terms
)
_small_conjunctions = st.lists(_small_atoms, max_size=2).map(Conjunction)


@st.composite
def _small_ctables(draw):
    arity = draw(st.integers(1, 2))
    n_rows = draw(st.integers(0, 3))
    rows = []
    for _ in range(n_rows):
        terms = [draw(_small_terms) for _ in range(arity)]
        cond = draw(st.one_of(st.none(), _small_conjunctions))
        rows.append(Row(terms, None if cond is None else cond))
    global_cond = draw(_small_conjunctions)
    return CTable("R", arity, rows, global_cond)


@st.composite
def _instances(draw):
    arity = draw(st.integers(1, 3))
    n_facts = draw(st.integers(0, 5))
    facts = [
        tuple(draw(_constants) for _ in range(arity)) for _ in range(n_facts)
    ]
    from repro.relational.instance import Relation

    return Instance({"R": Relation(arity, facts)})


class TestPropertyRoundTrips:
    @settings(max_examples=100, deadline=None)
    @given(_small_ctables())
    def test_text_roundtrip_preserves_worlds(self, table):
        db = TableDatabase.single(table)
        back = loads_database(dumps_database(db))
        # Structure may normalise (condition DNF); rep must be identical.
        assert back["R"].arity == table.arity
        assert enumerate_worlds(back) == enumerate_worlds(db)

    @settings(max_examples=120, deadline=None)
    @given(_ctables())
    def test_json_roundtrip_is_exact(self, table):
        assert table_from_json(table_to_json(table)) == table

    @settings(max_examples=80, deadline=None)
    @given(_instances())
    def test_instance_text_roundtrip(self, inst):
        assert loads_instance(dumps_instance(inst)) == inst

    @settings(max_examples=80, deadline=None)
    @given(_instances())
    def test_instance_json_roundtrip(self, inst):
        assert instance_from_json(instance_to_json(inst)) == inst


class TestAtomicWriteText:
    """Durability of registry/database persists: a crash mid-write must
    never leave a truncated file behind (the old code's bare
    ``open(path, "w")`` + incremental dump could)."""

    def test_writes_and_replaces(self, tmp_path):
        from repro.io.files import atomic_write_text

        path = tmp_path / "out.json"
        atomic_write_text(str(path), '{"v": 1}\n')
        assert path.read_text(encoding="utf-8") == '{"v": 1}\n'
        atomic_write_text(str(path), '{"v": 2}\n')
        assert path.read_text(encoding="utf-8") == '{"v": 2}\n'
        # No temp files linger after success.
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_failed_replace_keeps_old_content_and_cleans_up(
        self, tmp_path, monkeypatch
    ):
        import os as _os

        from repro.io import files as io_files

        path = tmp_path / "out.json"
        path.write_text("precious\n", encoding="utf-8")

        def failing_replace(src, dst):
            raise OSError("simulated crash at the rename")

        monkeypatch.setattr(io_files.os, "replace", failing_replace)
        with pytest.raises(OSError, match="simulated crash"):
            io_files.atomic_write_text(str(path), "overwrite\n")
        monkeypatch.undo()
        assert path.read_text(encoding="utf-8") == "precious\n"
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]
        assert _os.path.exists(str(path))

    def test_view_registry_save_is_atomic(self, tmp_path, monkeypatch):
        """``save_registry`` goes through the atomic writer: a simulated
        crash leaves the previous registry intact and loadable."""
        from repro.io import files as io_files
        from repro.views.persist import (
            REGISTRY_KIND,
            load_registry,
            registry_path,
            save_registry,
        )

        db_path = str(tmp_path / "db.pwt")
        registry = {"kind": REGISTRY_KIND, "digest": "d" * 64, "views": {}}
        save_registry(db_path, registry)
        assert load_registry(db_path) == registry

        def failing_replace(src, dst):
            raise OSError("simulated crash")

        monkeypatch.setattr(io_files.os, "replace", failing_replace)
        with pytest.raises(Exception):
            save_registry(db_path, {"kind": REGISTRY_KIND, "views": {}})
        monkeypatch.undo()
        # The old sidecar survived, byte-for-byte valid JSON.
        assert load_registry(db_path) == registry
        assert [p.name for p in tmp_path.iterdir()] == [
            registry_path(db_path).rsplit("/", 1)[-1]
        ]
