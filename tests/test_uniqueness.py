"""Tests for the uniqueness problem (Theorem 3.2)."""

import pytest

from oracles import oracle_unique
from repro.core.conditions import Conjunction, Eq, Neq
from repro.core.tables import CTable, TableDatabase, c_table, codd_table, e_table, g_table
from repro.core.terms import Variable
from repro.core.uniqueness import (
    is_unique,
    uniqueness_enumerate,
    uniqueness_gtable,
    uniqueness_posexist_etable,
    uniqueness_search,
    uniqueness_ucq_view,
)
from repro.queries import UCQQuery, atom, cq
from repro.relational.instance import Instance, Relation
from repro.workloads import random_table, random_world

x, y, z = Variable("x"), Variable("y"), Variable("z")


class TestGTablePTime:
    """Theorem 3.2(1): UNIQ(-) in PTIME for g-tables."""

    def test_ground_table_unique(self):
        table = codd_table("T", 1, [(1,), (2,)])
        assert uniqueness_gtable(
            Instance({"T": [(1,), (2,)]}), TableDatabase.single(table)
        )

    def test_free_variable_not_unique(self):
        table = codd_table("T", 1, [(x,)])
        assert not uniqueness_gtable(
            Instance({"T": [(1,)]}), TableDatabase.single(table)
        )

    def test_equality_pins_variable(self):
        table = g_table("T", 1, [("?x",)], Conjunction([Eq(x, 1)]))
        assert uniqueness_gtable(
            Instance({"T": [(1,)]}), TableDatabase.single(table)
        )

    def test_equality_chain_pins_through_variables(self):
        table = g_table("T", 2, [("?x", "?y")], Conjunction([Eq(x, y), Eq(y, 3)]))
        assert uniqueness_gtable(
            Instance({"T": [(3, 3)]}), TableDatabase.single(table)
        )

    def test_inequality_never_pins(self):
        table = g_table("T", 1, [("?x",)], Conjunction([Neq(x, 1), Neq(x, 2)]))
        assert not uniqueness_gtable(
            Instance({"T": [(3,)]}), TableDatabase.single(table)
        )

    def test_unsatisfiable_condition_not_unique(self):
        table = g_table("T", 1, [(1,)], Conjunction([Eq(x, 1), Neq(x, 1)]))
        assert not uniqueness_gtable(
            Instance({"T": [(1,)]}), TableDatabase.single(table)
        )

    def test_wrong_instance(self):
        table = codd_table("T", 1, [(1,)])
        assert not uniqueness_gtable(
            Instance({"T": [(2,)]}), TableDatabase.single(table)
        )

    def test_agrees_with_oracle(self, rng):
        for kind in ("codd", "e", "i", "g"):
            for _ in range(10):
                table = random_table(rng, kind, rows=2, num_constants=3)
                db = TableDatabase.single(table)
                candidate = random_world(rng, db)
                assert uniqueness_gtable(candidate, db) == oracle_unique(
                    candidate, db
                )


class TestPosExistOnETables:
    """Theorem 3.2(2): UNIQ(q0) in PTIME for pos. exist. queries on e-tables."""

    def _query(self):
        return UCQQuery([cq(atom("Q", "A"), atom("R", "A", "B"))])

    def test_projected_ground_answer(self):
        table = e_table("R", 2, [(1, x), (1, y)])
        db = TableDatabase.single(table)
        assert uniqueness_posexist_etable(Instance({"Q": [(1,)]}), db, self._query())

    def test_variable_in_answer_position_not_unique(self):
        table = e_table("R", 2, [(x, 1)])
        db = TableDatabase.single(table)
        assert not uniqueness_posexist_etable(
            Instance({"Q": [(1,)]}), db, self._query()
        )

    def test_join_query(self):
        q = UCQQuery([cq(atom("Q", "A"), atom("R", "A", "B"), atom("S", "B"))])
        r = e_table("R", 2, [(1, x)])
        s = e_table("S", 1, [(x,)])
        db = TableDatabase([r, s])
        # R(1, x) joins S(x) always (same x): answer {1} in every world.
        assert uniqueness_posexist_etable(Instance({"Q": [(1,)]}), db, q)

    def test_join_with_fresh_variables_not_certain(self):
        q = UCQQuery([cq(atom("Q", "A"), atom("R", "A", "B"), atom("S", "B"))])
        r = e_table("R", 2, [(1, x)])
        s = e_table("S", 1, [(y,)])
        db = TableDatabase([r, s])
        # x = y only in some worlds: {1} possible but not certain.
        assert not uniqueness_posexist_etable(Instance({"Q": [(1,)]}), db, q)

    def test_rejects_nonpositive(self):
        q = UCQQuery(
            [cq(atom("Q", "A"), atom("R", "A", "B"), where=[Neq(Variable("A"), 1)])]
        )
        with pytest.raises(ValueError):
            uniqueness_posexist_etable(
                Instance({"Q": [(1,)]}), TableDatabase.single(e_table("R", 2, [(1, x)])), q
            )

    def test_agrees_with_enumeration(self, rng):
        q = self._query()
        for _ in range(12):
            table = random_table(
                rng, "e", name="R", rows=2, arity=2, num_constants=2, num_variables=2
            )
            db = TableDatabase.single(table)
            world = random_world(rng, db)
            candidate = q(world)
            assert uniqueness_posexist_etable(candidate, db, q) == oracle_unique(
                candidate, db, q
            )


class TestCTableSearch:
    """The structured coNP procedure on c-tables."""

    def test_tautological_condition_unique(self):
        table = c_table("T", 1, [((1,), "u = u")])
        assert uniqueness_search(
            Instance({"T": [(1,)]}), TableDatabase.single(table)
        )

    def test_contingent_condition_not_unique(self):
        table = c_table("T", 1, [((1,), "u = 0")])
        assert not uniqueness_search(
            Instance({"T": [(1,)]}), TableDatabase.single(table)
        )

    def test_covering_conditions_unique(self):
        # Rows (1) if u = 0 and (1) if u != 0: always exactly {1}.
        table = c_table("T", 1, [((1,), "u = 0"), ((1,), "u != 0")])
        assert uniqueness_search(
            Instance({"T": [(1,)]}), TableDatabase.single(table)
        )

    def test_escape_via_variable_row(self):
        table = c_table("T", 1, [((1,),), (("?x",), "x != 1")])
        assert not uniqueness_search(
            Instance({"T": [(1,)]}), TableDatabase.single(table)
        )

    def test_agrees_with_oracle(self, rng):
        for _ in range(15):
            table = random_table(rng, "c", rows=2, num_constants=2, num_variables=2)
            db = TableDatabase.single(table)
            candidate = random_world(rng, db)
            assert uniqueness_search(candidate, db) == oracle_unique(candidate, db)


class TestDispatchAndViews:
    def test_auto_dispatch_gtable(self):
        table = codd_table("T", 1, [(1,)])
        assert is_unique(Instance({"T": [(1,)]}), TableDatabase.single(table))

    def test_ucq_view_uniqueness(self):
        # Query with != : Theorem 3.2(4)'s fragment.
        q = UCQQuery(
            [cq(atom("Q", 1), atom("R", "A"), where=[Neq(Variable("A"), 0)])]
        )
        table = CTable("R", 1, [(x,)])
        db = TableDatabase.single(table)
        # Worlds: {} (x = 0) or {(1)} (x != 0): not unique.
        assert not is_unique(Instance({"Q": [(1,)]}), db, q)
        assert not uniqueness_ucq_view(Instance({"Q": [(1,)]}), db, q)

    def test_ucq_view_unique_case(self):
        q = UCQQuery([cq(atom("Q", 1), atom("R", "A"))])
        table = CTable("R", 1, [(x,)])
        db = TableDatabase.single(table)
        # Row always present: answer always {(1)}.
        assert is_unique(Instance({"Q": [(1,)]}), db, q)

    def test_enumerate_fallback(self):
        q = UCQQuery([cq(atom("Q", "A"), atom("R", "A"))])
        table = CTable("R", 1, [(1,)])
        db = TableDatabase.single(table)
        assert uniqueness_enumerate(Instance({"Q": [(1,)]}), db, q)
