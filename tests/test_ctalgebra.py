"""Tests for the c-table algebra: rep commutes with queries and operators.

The central property ([Imielinski-Lipski 84], used by Theorems 3.2(2),
4.2(3), 5.2(1)):

    rep(apply(q, D)) == { q(I) : I in rep(D) }

checked against the enumeration semantics on small inputs, for UCQs and
for every lifted relational operator including the difference extension.
"""

import pytest

from repro.core.conditions import Conjunction, Eq, Neq
from repro.core.tables import CTable, TableDatabase, c_table
from repro.core.terms import Constant, Variable
from repro.core.worlds import enumerate_worlds
from repro.ctalgebra import (
    apply_ucq,
    difference_ct,
    evaluate_ct,
    intersect_ct,
    product_ct,
    project_ct,
    select_ct,
    union_ct,
)
from repro.queries import UCQQuery, atom, cq
from repro.relational import (
    ColEq,
    ColEqConst,
    ColNeqConst,
    Difference,
    Intersect,
    Product,
    Project,
    Scan,
    Select,
    Union,
    evaluate_to_relation,
)
from repro.relational.instance import Instance
from repro.workloads import random_table

x, y = Variable("x"), Variable("y")


from repro.core.worlds import canonicalize_instance


def _canon(worlds, protected):
    return {canonicalize_instance(w, protected) for w in worlds}


def _worlds_of_view_by_definition(db, query, extra=()):
    return {query(world) for world in enumerate_worlds(db, extra_constants=extra)}


def _worlds_of_folded(folded, extra=()):
    return set(enumerate_worlds(folded, extra_constants=extra))


def assert_rep_commutes_ucq(db, query):
    """rep(apply_ucq(q, db)) must equal q applied world-wise.

    World sets are compared up to renaming of the fresh enumeration
    constants (canonicalisation protects the genuine input constants).
    """
    extra = sorted(query.constants() | db.constants(), key=Constant.sort_key)
    folded = apply_ucq(query, db)
    assert _canon(_worlds_of_folded(folded, extra), extra) == _canon(
        _worlds_of_view_by_definition(db, query, extra), extra
    )


class TestUCQFolding:
    def test_projection(self):
        db = TableDatabase.single(CTable("R", 2, [(1, x), (y, 2)]))
        q = UCQQuery([cq(atom("Q", "A"), atom("R", "A", "B"))])
        assert_rep_commutes_ucq(db, q)

    def test_selection_constant(self):
        db = TableDatabase.single(CTable("R", 2, [(1, x), (y, 2)]))
        q = UCQQuery([cq(atom("Q", "B"), atom("R", 1, "B"))])
        assert_rep_commutes_ucq(db, q)

    def test_join(self):
        db = TableDatabase.single(CTable("R", 2, [(1, x), (y, 2)]))
        q = UCQQuery(
            [cq(atom("Q", "A", "C"), atom("R", "A", "B"), atom("R", "B", "C"))]
        )
        assert_rep_commutes_ucq(db, q)

    def test_union_of_rules(self):
        db = TableDatabase.single(CTable("R", 2, [(1, x)]))
        q = UCQQuery(
            [
                cq(atom("Q", "A"), atom("R", "A", "B")),
                cq(atom("Q", "B"), atom("R", "A", "B")),
            ]
        )
        assert_rep_commutes_ucq(db, q)

    def test_multi_relation(self):
        db = TableDatabase(
            [CTable("R", 2, [(1, x)]), CTable("S", 1, [(x,), (2,)])]
        )
        q = UCQQuery([cq(atom("Q", "A"), atom("R", "A", "B"), atom("S", "B"))])
        assert_rep_commutes_ucq(db, q)

    def test_with_local_conditions(self):
        db = TableDatabase.single(
            c_table("R", 2, [((1, "?x"), "x != 0"), ((2, 3),)])
        )
        q = UCQQuery([cq(atom("Q", "B"), atom("R", "A", "B"))])
        assert_rep_commutes_ucq(db, q)

    def test_with_global_condition(self):
        table = CTable("R", 2, [(x, y)], Conjunction([Neq(x, y)]))
        db = TableDatabase.single(table)
        q = UCQQuery([cq(atom("Q", "A"), atom("R", "A", "B"))])
        assert_rep_commutes_ucq(db, q)

    def test_inequality_side_condition(self):
        db = TableDatabase.single(CTable("R", 2, [(1, x)]))
        q = UCQQuery(
            [cq(atom("Q", "B"), atom("R", "A", "B"), where=[Neq(Variable("B"), 0)])]
        )
        assert_rep_commutes_ucq(db, q)

    def test_head_constants(self):
        db = TableDatabase.single(CTable("R", 1, [(x,)]))
        q = UCQQuery([cq(atom("Q", 1), atom("R", "A"), where=[Eq(Variable("A"), 0)])])
        assert_rep_commutes_ucq(db, q)

    def test_random_tables_random_small(self, rng):
        q = UCQQuery(
            [cq(atom("Q", "A", "C"), atom("R", "A", "B"), atom("R", "C", "B"))]
        )
        for kind in ("codd", "e", "c"):
            for _ in range(5):
                table = random_table(
                    rng, kind, name="R", rows=2, num_constants=2, **(
                        {"num_variables": 2} if kind != "codd" else {}
                    )
                )
                assert_rep_commutes_ucq(TableDatabase.single(table), q)

    def test_polynomial_size(self):
        """The folded table grows polynomially for a fixed query."""
        q = UCQQuery([cq(atom("Q", "A"), atom("R", "A", "B"))])
        for n in (2, 4, 8):
            rows = [(i, Variable(f"v{i}")) for i in range(n)]
            db = TableDatabase.single(CTable("R", 2, rows))
            folded = apply_ucq(q, db)
            assert folded["Q"].arity == 1
            assert len(folded["Q"].rows) == n  # linear here


def _operator_commutes(op_ct, op_ra, db):
    """Check one lifted operator against the instance-level evaluator."""
    extra = sorted(db.constants(), key=Constant.sort_key)
    folded = TableDatabase.single(op_ct)
    lhs = set(enumerate_worlds(folded, extra_constants=extra))
    rhs = {
        Instance({op_ct.name: evaluate_to_relation(op_ra, world)})
        for world in enumerate_worlds(db, extra_constants=extra)
    }
    assert _canon(lhs, extra) == _canon(rhs, extra)


class TestLiftedOperators:
    def _db(self):
        return TableDatabase(
            [
                c_table("R", 2, [((1, "?x"),), (("?y", 2), "y != 0")]),
                CTable("S", 2, [(1, x), (3, 4)]),
            ]
        )

    def test_select_col_eq_const(self):
        db = self._db()
        expr = Select(Scan("R", 2), [ColEqConst(1, 2)])
        _operator_commutes(
            select_ct(db["R"], [ColEqConst(1, 2)], name="V"),
            expr,
            db,
        )

    def test_select_col_eq_col(self):
        db = self._db()
        _operator_commutes(
            select_ct(db["R"], [ColEq(0, 1)], name="V"),
            Select(Scan("R", 2), [ColEq(0, 1)]),
            db,
        )

    def test_select_negative_predicate(self):
        db = self._db()
        _operator_commutes(
            select_ct(db["R"], [ColNeqConst(0, 1)], name="V"),
            Select(Scan("R", 2), [ColNeqConst(0, 1)]),
            db,
        )

    def test_project(self):
        db = self._db()
        _operator_commutes(
            project_ct(db["R"], [1], name="V"),
            Project(Scan("R", 2), [1]),
            db,
        )

    def test_product(self):
        db = self._db()
        _operator_commutes(
            product_ct(db["R"], db["S"], name="V"),
            Product(Scan("R", 2), Scan("S", 2)),
            db,
        )

    def test_union(self):
        db = self._db()
        _operator_commutes(
            union_ct(db["R"], db["S"], name="V"),
            Union(Scan("R", 2), Scan("S", 2)),
            db,
        )

    def test_intersect(self):
        db = self._db()
        _operator_commutes(
            intersect_ct(db["R"], db["S"], name="V"),
            Intersect(Scan("R", 2), Scan("S", 2)),
            db,
        )

    def test_difference(self):
        db = self._db()
        _operator_commutes(
            difference_ct(db["R"], db["S"], name="V"),
            Difference(Scan("R", 2), Scan("S", 2)),
            db,
        )

    def test_difference_with_conditions_both_sides(self):
        db = TableDatabase(
            [
                c_table("R", 1, [((1,), "u = 0"), ((2,),)]),
                c_table("S", 1, [((1,),), ((2,), "u != 0")]),
            ]
        )
        _operator_commutes(
            difference_ct(db["R"], db["S"], name="V"),
            Difference(Scan("R", 1), Scan("S", 1)),
            db,
        )

    def test_arity_mismatch_raises(self):
        db = self._db()
        with pytest.raises(ValueError):
            union_ct(db["R"], project_ct(db["S"], [0]))


class TestRAEvaluation:
    def test_composed_expression(self):
        db = TableDatabase.single(c_table("R", 2, [((1, "?x"),), ((2, "?y"),)]))
        extra = sorted(db.constants(), key=Constant.sort_key)
        expr = Project(Select(Scan("R", 2), [ColEqConst(0, 1)]), [1])
        view = evaluate_ct(expr, db, name="V")
        lhs = set(enumerate_worlds(TableDatabase.single(view), extra_constants=extra))
        rhs = {
            Instance({"V": evaluate_to_relation(expr, world)})
            for world in enumerate_worlds(db, extra_constants=extra)
        }
        assert _canon(lhs, extra) == _canon(rhs, extra)

    def test_positive_expression_preserves_conjunctive_conditions(self):
        db = TableDatabase.single(CTable("R", 2, [(1, x)]))
        expr = Select(Scan("R", 2), [ColEqConst(1, 5)])
        view = evaluate_ct(expr, db)
        assert len(view.rows) == 1
        assert view.rows[0].condition_dnf() == (
            Conjunction([Eq(x, 5)]),
        )
