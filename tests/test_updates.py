"""Tests for repro.extensions.updates: pointwise update semantics [1]."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Instance,
    TableDatabase,
    c_table,
    codd_table,
    e_table,
    enumerate_worlds,
    g_table,
)
from repro.core.terms import Constant
from repro.extensions import delete_fact, insert_fact, modify_fact
from repro.relational.instance import Relation


def worlds_with(db):
    return enumerate_worlds(db)


def facts_of(world, name="R"):
    return {tuple(c.value for c in f) for f in world[name]}


class TestInsert:
    def test_insert_adds_to_every_world(self):
        db = TableDatabase.single(codd_table("R", 1, [("?x",)]))
        out = insert_fact(db, "R", (7,))
        assert all((Constant(7),) in w["R"].facts for w in worlds_with(out))

    def test_insert_pointwise_semantics(self):
        db = TableDatabase.single(codd_table("R", 1, [("?x",), (0,)]))
        out = insert_fact(db, "R", (7,))
        expected = {
            Instance({"R": Relation(1, set(w["R"].facts) | {(Constant(7),)})})
            for w in worlds_with(db)
        }
        assert worlds_with(out) == expected

    def test_insert_existing_fact_is_idempotent_on_rep(self):
        db = TableDatabase.single(codd_table("R", 1, [(0,)]))
        out = insert_fact(db, "R", (0,))
        assert worlds_with(out) == worlds_with(db)

    def test_arity_checked(self):
        db = TableDatabase.single(codd_table("R", 2, [(0, 1)]))
        with pytest.raises(ValueError, match="arity"):
            insert_fact(db, "R", (0,))

    def test_unknown_relation(self):
        db = TableDatabase.single(codd_table("R", 1, [(0,)]))
        with pytest.raises(KeyError):
            insert_fact(db, "S", (0,))


class TestDelete:
    def test_delete_ground_row(self):
        db = TableDatabase.single(codd_table("R", 1, [(0,), (1,)]))
        out = delete_fact(db, "R", (0,))
        assert worlds_with(out) == {Instance({"R": [(1,)]})}

    def test_delete_rewrites_null_rows(self):
        # R = {(?x,)}: deleting (0,) leaves worlds {(c,)} for c != 0 and {}.
        db = TableDatabase.single(codd_table("R", 1, [("?x",)]))
        out = delete_fact(db, "R", (0,))
        for world in worlds_with(out):
            assert (Constant(0),) not in world["R"].facts
        # The empty world (x was 0, row deleted) must be possible.
        assert any(len(w["R"]) == 0 for w in worlds_with(out))

    def test_delete_pointwise_semantics(self):
        db = TableDatabase.single(
            e_table("R", 2, [("?x", "?x"), (0, "?y"), (1, 2)])
        )
        out = delete_fact(db, "R", (0, 0))
        target = (Constant(0), Constant(0))
        expected = {
            Instance({"R": Relation(2, set(w["R"].facts) - {target})})
            for w in worlds_with(db)
        }
        assert worlds_with(out) == expected

    def test_delete_respects_existing_local_conditions(self):
        db = TableDatabase.single(
            c_table("R", 1, [(("?x",), "x != 5")])
        )
        out = delete_fact(db, "R", (0,))
        for world in worlds_with(out):
            assert (Constant(0),) not in world["R"].facts
            assert (Constant(5),) not in world["R"].facts

    def test_delete_unmatched_fact_is_noop_on_rep(self):
        db = TableDatabase.single(codd_table("R", 2, [(1, 2)]))
        out = delete_fact(db, "R", (8, 9))
        assert worlds_with(out) == worlds_with(db)

    def test_delete_then_member(self):
        from repro import is_certain, is_possible

        db = TableDatabase.single(codd_table("R", 1, [("?x",), (3,)]))
        out = delete_fact(db, "R", (3,))
        assert not is_possible(Instance({"R": [(3,)]}), out)
        # Note: x may still be anything except producing 3? No -- x is
        # unconstrained but the deletion also rewrote the (?x,) row.
        assert is_possible(Instance({"R": [(4,)]}), out)

    def test_arity_checked(self):
        db = TableDatabase.single(codd_table("R", 1, [(0,)]))
        with pytest.raises(ValueError, match="arity"):
            delete_fact(db, "R", (0, 1))


class TestModify:
    def test_modify_moves_the_fact(self):
        db = TableDatabase.single(codd_table("R", 1, [(0,), (1,)]))
        out = modify_fact(db, "R", (0,), (9,))
        assert worlds_with(out) == {Instance({"R": [(1,), (9,)]})}

    def test_modify_pointwise(self):
        db = TableDatabase.single(codd_table("R", 1, [("?x",)]))
        out = modify_fact(db, "R", (0,), (9,))
        nine = (Constant(9),)
        zero = (Constant(0),)
        for world in worlds_with(out):
            assert nine in world["R"].facts
            assert zero not in world["R"].facts


class TestUpdateClosure:
    """g-tables are NOT closed under deletion; c-tables are."""

    def test_deletion_creates_local_conditions(self):
        db = TableDatabase.single(g_table("R", 1, [("?x",)], "x != 9"))
        out = delete_fact(db, "R", (0,))
        assert out["R"].classify() == "c"

    def test_ctable_stays_ctable(self):
        db = TableDatabase.single(c_table("R", 1, [(("?x",), "x != 5")]))
        out = delete_fact(db, "R", (0,))
        assert out["R"].classify() == "c"


_values = st.one_of(st.integers(0, 2), st.sampled_from(["?x", "?y"]))


@st.composite
def _tables(draw):
    n_rows = draw(st.integers(1, 3))
    rows = [tuple(draw(_values) for _ in range(2)) for _ in range(n_rows)]
    return TableDatabase.single(e_table("R", 2, rows))


class TestUpdateProperties:
    @settings(max_examples=40, deadline=None)
    @given(_tables(), st.integers(0, 2), st.integers(0, 2))
    def test_delete_is_pointwise(self, db, a, b):
        # Deletion mentions the target's constants, so it is not generic
        # in them: the pointwise comparison must enumerate rep(db) with
        # those constants in the domain.
        target = (Constant(a), Constant(b))
        out = delete_fact(db, "R", (a, b))
        expected = {
            Instance({"R": Relation(2, set(w["R"].facts) - {target})})
            for w in enumerate_worlds(db, extra_constants=target)
        }
        assert enumerate_worlds(out, extra_constants=target) == expected

    @settings(max_examples=40, deadline=None)
    @given(_tables(), st.integers(0, 2), st.integers(0, 2))
    def test_insert_is_pointwise(self, db, a, b):
        target = (Constant(a), Constant(b))
        out = insert_fact(db, "R", (a, b))
        expected = {
            Instance({"R": Relation(2, set(w["R"].facts) | {target})})
            for w in enumerate_worlds(db, extra_constants=target)
        }
        assert enumerate_worlds(out, extra_constants=target) == expected

    @settings(max_examples=30, deadline=None)
    @given(_tables(), st.integers(0, 2), st.integers(0, 2))
    def test_delete_is_idempotent(self, db, a, b):
        once = delete_fact(db, "R", (a, b))
        twice = delete_fact(once, "R", (a, b))
        assert worlds_with(once) == worlds_with(twice)
