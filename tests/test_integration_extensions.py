"""Cross-subsystem integration: extensions agree with the core semantics.

Each extension (io, modal, maybe, prob, cli) is tested in isolation in
its own module; this module wires them together the way a downstream
application would and checks the composition against the core
enumeration semantics:

* maybe-table --> guard encoding --> text file --> CLI verdicts;
* maybe-table --> pc-table with bernoulli guards --> tuple-independent
  probabilities consistent with POSS/CERT;
* modal program over a serialized-then-reloaded database.
"""

import pytest

from repro import (
    Instance,
    TableDatabase,
    UCQQuery,
    atom,
    cq,
    enumerate_worlds,
    is_certain,
    is_possible,
)
from repro.cli import EXIT_NO, EXIT_YES, main
from repro.core.terms import Constant
from repro.extensions import maybe_table
from repro.io import dumps_database, dumps_instance, loads_database
from repro.modal import CERTAIN, POSSIBLE, ModalProgram, ModalView
from repro.prob import PCDatabase, bernoulli, uniform


@pytest.fixture
def orders():
    """Orders(customer, item): one sure, one maybe, one null-valued."""
    return maybe_table(
        "Orders",
        2,
        sure=[("ann", "book"), ("bob", "?i")],
        maybe=[("eve", "pen")],
    )


class TestMaybeThroughFilesAndCli:
    def test_roundtrip_encoded_maybe_table(self, orders):
        db = TableDatabase.single(orders.to_ctable())
        back = loads_database(dumps_database(db))
        assert back == db
        assert enumerate_worlds(back) == enumerate_worlds(db)

    def test_cli_verdicts_match_library(self, orders, tmp_path):
        db = TableDatabase.single(orders.to_ctable())
        db_path = tmp_path / "orders.pwt"
        db_path.write_text(dumps_database(db))

        sure = Instance({"Orders": [("ann", "book")]})
        sure_path = tmp_path / "sure.pwi"
        sure_path.write_text(dumps_instance(sure))
        assert is_certain(sure, db)
        assert main(["certain", str(db_path), str(sure_path)]) == EXIT_YES

        maybe = Instance({"Orders": [("eve", "pen")]})
        maybe_path = tmp_path / "maybe.pwi"
        maybe_path.write_text(dumps_instance(maybe))
        assert is_possible(maybe, db) and not is_certain(maybe, db)
        assert main(["possible", str(db_path), str(maybe_path)]) == EXIT_YES
        assert main(["certain", str(db_path), str(maybe_path)]) == EXIT_NO


class TestMaybeAsTupleIndependentProbabilisticTable:
    """A maybe-table with bernoulli guards is a tuple-independent table."""

    def test_guard_probability_is_tuple_probability(self, orders):
        encoded = orders.to_ctable()
        guards = sorted(
            v.name for v in encoded.variables() if v.name.startswith("@maybe")
        )
        assert len(guards) == 1
        pc = PCDatabase(
            TableDatabase.single(encoded),
            {
                guards[0]: bernoulli(0.25),
                "i": uniform(["book", "pen"]),
            },
        )
        assert pc.fact_probability("Orders", ("eve", "pen")) == pytest.approx(0.25)
        assert pc.fact_probability("Orders", ("ann", "book")) == pytest.approx(1.0)
        assert pc.fact_probability("Orders", ("bob", "pen")) == pytest.approx(0.5)

    def test_probability_endpoints_match_poss_cert(self, orders):
        encoded = orders.to_ctable()
        db = TableDatabase.single(encoded)
        guards = [v.name for v in encoded.variables() if v.name.startswith("@maybe")]
        pc = PCDatabase(
            db,
            {guards[0]: bernoulli(0.5), "i": uniform(["book", "pen"])},
        )
        for fact in (("ann", "book"), ("eve", "pen"), ("bob", "book")):
            p = pc.fact_probability("Orders", fact)
            inst = Instance({"Orders": [fact]})
            assert (p > 0) == is_possible(inst, db)
            assert (p == pytest.approx(1.0)) == is_certain(inst, db)


class TestModalOverSerializedDatabase:
    def test_modal_program_after_reload(self, orders, tmp_path):
        db = TableDatabase.single(orders.to_ctable())
        reloaded = loads_database(dumps_database(db))

        q = UCQQuery([cq(atom("Who", "C"), atom("Orders", "C", "I"))])
        program = ModalProgram(
            [ModalView("Sure", CERTAIN, q), ModalView("Maybe", POSSIBLE, q)]
        )
        out_orig = program.collapse(db)
        out_reloaded = program.collapse(reloaded)
        assert out_orig == out_reloaded
        sure = {c.value for (c,) in out_orig["Sure"]}
        maybe = {c.value for (c,) in out_orig["Maybe"]}
        assert sure == {"ann", "bob"}
        assert maybe == {"ann", "bob", "eve"}
