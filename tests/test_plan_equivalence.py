"""Plan-equivalence property harness for the cost-based join orderer.

The contract (ISSUE 2): for every n-way join expression ``e`` and c-table
database ``D``, all three evaluation paths agree on the represented set of
worlds::

    rep(evaluate_ct(e, D))                 # naive select-over-product
    == rep(evaluate_ct_optimized(e, D))    # rewrite-planned, input order
    == rep(evaluate_ct_ordered(e, D))      # statistics-driven join order

checked through the world-enumeration oracle on 300+ randomized 2-5-way
join expressions (connected random join graphs, occasionally cyclic) over
random c-tables, in ground, variable-bearing and locally-conditioned
variants.  Worlds are compared after ``strong_canonicalize`` because the
three paths may keep different dead rows and hence different variable
sets.

Structural properties of the ordering pass ride along: it is a pure
reassociation (same scans, same arity, original column order restored)
and it is deterministic.
"""

from __future__ import annotations

import random

import pytest

from repro.core.tables import TableDatabase
from repro.core.terms import Constant
from repro.core.worlds import enumerate_worlds, strong_canonicalize
from repro.ctalgebra import evaluate_ct, evaluate_ct_optimized, evaluate_ct_ordered
from repro.relational import Scan, Statistics, order_joins, plan
from repro.workloads import (
    random_join_query,
    random_nway_join_database,
    star_join_database,
    star_join_expression,
)


def _rep(table, extra):
    worlds = enumerate_worlds(TableDatabase.single(table), extra_constants=extra)
    return {strong_canonicalize(w, extra) for w in worlds}


def assert_three_way_agreement(expression, db):
    naive = evaluate_ct(expression, db, name="V")
    planned = evaluate_ct_optimized(expression, db, name="V")
    ordered = evaluate_ct_ordered(expression, db, name="V")
    assert naive.arity == planned.arity == ordered.arity
    extra = sorted(db.constants(), key=Constant.sort_key)
    rep_naive = _rep(naive, extra)
    assert rep_naive == _rep(planned, extra), repr(expression)
    assert rep_naive == _rep(ordered, extra), repr(expression)


#: 4 join widths x 40 seeds = 160 parametrized cases; each runs a ground
#: variant and a variable/condition-bearing variant, for 320 total.
CASES = [(n, seed) for n in (2, 3, 4, 5) for seed in range(40)]


class TestThreeWayEquivalence:
    @pytest.mark.parametrize("num_tables,seed", CASES)
    def test_random_join_expression(self, num_tables, seed):
        rng = random.Random(0x0D0E + 1009 * num_tables + seed)
        expr = random_join_query(rng, num_tables)

        ground = random_nway_join_database(rng, num_tables, rows_per_table=2)
        assert_three_way_agreement(expr, ground)

        wild = random_nway_join_database(
            rng,
            num_tables,
            rows_per_table=2,
            var_probability=0.3,
            local_probability=0.3,
        )
        assert_three_way_agreement(expr, wild)


class TestOrderingIsAReassociation:
    def test_star_plan_restores_column_order(self):
        rng = random.Random(7)
        db = star_join_database(rng, num_dims=3, dim_rows=3, fact_rows=5)
        expr = star_join_expression(num_dims=3)
        stats = Statistics.collect(db)

        planned = plan(expr)
        ordered = plan(expr, stats=stats)
        assert planned.arity == ordered.arity == expr.arity
        assert planned.relation_names() == ordered.relation_names()

        # Cheap structural witness of equivalence on the ground star data:
        # identical row sets, in the original column order.
        left_deep = evaluate_ct_optimized(expr, db, name="V")
        cost_ordered = evaluate_ct_ordered(expr, db, name="V", stats=stats)
        assert set(left_deep.rows) == set(cost_ordered.rows)

    def test_ordering_is_deterministic(self):
        rng = random.Random(21)
        db = random_nway_join_database(rng, 4, rows_per_table=3)
        expr = random_join_query(random.Random(22), 4)
        stats = Statistics.collect(db)
        first = plan(expr, stats=stats)
        second = plan(expr, stats=stats)
        assert repr(first) == repr(second)

    def test_order_joins_moves_fact_table_off_the_tail(self):
        # Pessimal input order: dims first, fact last.  The cost model must
        # place F second (right after the first, smallest dimension) so no
        # intermediate exceeds the fact cardinality.
        rng = random.Random(3)
        db = star_join_database(rng, num_dims=3, dim_rows=4, fact_rows=32)
        expr = star_join_expression(num_dims=3)
        explain: list[str] = []
        plan(expr, stats=Statistics.collect(db), explain=explain)
        assert len(explain) == 1
        order = explain[0]
        assert order.startswith("join order: ")
        names = [part.split()[0] for part in order[len("join order: ") :].split(" >< ")]
        assert names[1] == "F", order
        assert names[0].startswith("D")

    def test_explain_untouched_for_two_way_join(self):
        rng = random.Random(4)
        db = random_nway_join_database(rng, 2, rows_per_table=3)
        expr = random_join_query(random.Random(5), 2)
        explain: list[str] = []
        plan(expr, stats=Statistics.collect(db), explain=explain)
        assert explain == []

    def test_order_joins_passes_scans_through(self):
        stats = Statistics()
        scan = Scan("R", 2)
        assert order_joins(scan, stats) is scan
