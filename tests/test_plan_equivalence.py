"""Plan-equivalence property harness for the cost-based join orderers.

The contract (ISSUEs 2 and 3): for every n-way join expression ``e`` and
c-table database ``D``, all four evaluation paths agree on the
represented set of worlds::

    rep(evaluate_ct(e, D))                 # naive select-over-product
    == rep(evaluate_ct_optimized(e, D))    # rewrite-planned, input order
    == rep(evaluate_ct_ordered(e, D, ordering="greedy"))  # greedy left-deep
    == rep(evaluate_ct_ordered(e, D, ordering="dp"))      # Selinger DP, bushy

checked through the world-enumeration oracle on 300+ randomized 2-6-way
join expressions (connected random join graphs, occasionally cyclic) over
random c-tables, in ground, variable-bearing and locally-conditioned
variants.  Worlds are compared after ``strong_canonicalize`` because the
paths may keep different dead rows and hence different variable sets.

Structural properties of the ordering passes ride along: both are pure
reassociations (same scans, same arity, original column order restored),
both are deterministic, the DP orderer picks genuinely bushy shapes on
snowflake graphs and falls back to the greedy orderer above its leaf
threshold.
"""

from __future__ import annotations

import random

import pytest

from repro.core.tables import TableDatabase
from repro.core.terms import Constant
from repro.core.worlds import enumerate_worlds, strong_canonicalize
from repro.ctalgebra import evaluate_ct, evaluate_ct_optimized, evaluate_ct_ordered
from repro.relational import (
    Join,
    PlanError,
    Product,
    Scan,
    Statistics,
    order_joins,
    order_joins_dp,
    plan,
)
from repro.workloads import (
    random_join_query,
    random_nway_join_database,
    snowflake_join_database,
    snowflake_join_expression,
    star_join_database,
    star_join_expression,
)


def _rep(table, extra):
    worlds = enumerate_worlds(TableDatabase.single(table), extra_constants=extra)
    return {strong_canonicalize(w, extra) for w in worlds}


def assert_all_paths_agree(expression, db):
    naive = evaluate_ct(expression, db, name="V")
    planned = evaluate_ct_optimized(expression, db, name="V")
    greedy = evaluate_ct_ordered(expression, db, name="V", ordering="greedy")
    dp = evaluate_ct_ordered(expression, db, name="V", ordering="dp")
    assert naive.arity == planned.arity == greedy.arity == dp.arity
    extra = sorted(db.constants(), key=Constant.sort_key)
    rep_naive = _rep(naive, extra)
    assert rep_naive == _rep(planned, extra), repr(expression)
    assert rep_naive == _rep(greedy, extra), repr(expression)
    assert rep_naive == _rep(dp, extra), repr(expression)


#: Join widths x seeds; each case runs a ground variant and a
#: variable/condition-bearing variant.  6-way graphs get fewer seeds —
#: their world enumeration dominates the harness's runtime.
CASES = [(n, seed) for n in (2, 3, 4, 5) for seed in range(40)]
CASES += [(6, seed) for seed in range(15)]


class TestPlanEquivalence:
    @pytest.mark.parametrize("num_tables,seed", CASES)
    def test_random_join_expression(self, num_tables, seed):
        rng = random.Random(0x0D0E + 1009 * num_tables + seed)
        expr = random_join_query(rng, num_tables)

        ground = random_nway_join_database(rng, num_tables, rows_per_table=2)
        assert_all_paths_agree(expr, ground)

        wild = random_nway_join_database(
            rng,
            num_tables,
            rows_per_table=2,
            var_probability=0.3,
            local_probability=0.3,
        )
        assert_all_paths_agree(expr, wild)


class TestOrderingIsAReassociation:
    def test_star_plan_restores_column_order(self):
        rng = random.Random(7)
        db = star_join_database(rng, num_dims=3, dim_rows=3, fact_rows=5)
        expr = star_join_expression(num_dims=3)
        stats = Statistics.collect(db)

        planned = plan(expr)
        ordered = plan(expr, stats=stats)
        assert planned.arity == ordered.arity == expr.arity
        assert planned.relation_names() == ordered.relation_names()

        # Cheap structural witness of equivalence on the ground star data:
        # identical row sets, in the original column order.
        left_deep = evaluate_ct_optimized(expr, db, name="V")
        cost_ordered = evaluate_ct_ordered(expr, db, name="V", stats=stats)
        assert set(left_deep.rows) == set(cost_ordered.rows)

    def test_ordering_is_deterministic(self):
        rng = random.Random(21)
        db = random_nway_join_database(rng, 4, rows_per_table=3)
        expr = random_join_query(random.Random(22), 4)
        stats = Statistics.collect(db)
        first = plan(expr, stats=stats)
        second = plan(expr, stats=stats)
        assert repr(first) == repr(second)

    def test_order_joins_moves_fact_table_off_the_tail(self):
        # Pessimal input order: dims first, fact last.  The greedy cost
        # model must place F second (right after the first, smallest
        # dimension) so no intermediate exceeds the fact cardinality.
        rng = random.Random(3)
        db = star_join_database(rng, num_dims=3, dim_rows=4, fact_rows=32)
        expr = star_join_expression(num_dims=3)
        explain: list[str] = []
        plan(expr, stats=Statistics.collect(db), explain=explain, ordering="greedy")
        assert len(explain) == 1
        order = explain[0]
        assert order.startswith("join order: ")
        names = [part.split()[0] for part in order[len("join order: ") :].split(" >< ")]
        assert names[1] == "F", order
        assert names[0].startswith("D")

    def test_explain_untouched_for_two_way_join(self):
        rng = random.Random(4)
        db = random_nway_join_database(rng, 2, rows_per_table=3)
        expr = random_join_query(random.Random(5), 2)
        explain: list[str] = []
        plan(expr, stats=Statistics.collect(db), explain=explain)
        assert explain == []

    def test_order_joins_passes_scans_through(self):
        stats = Statistics()
        scan = Scan("R", 2)
        assert order_joins(scan, stats) is scan
        assert order_joins_dp(scan, stats) is scan


def _has_bushy_join(node) -> bool:
    """True when some Join's two children are both Joins (a bushy shape)."""
    if isinstance(node, Join):
        if isinstance(node.left, Join) and isinstance(node.right, Join):
            return True
    for attr in ("left", "right", "child"):
        child = getattr(node, attr, None)
        if child is not None and _has_bushy_join(child):
            return True
    return False


class TestSelingerDP:
    def _snowflake(self):
        rng = random.Random(11)
        db = snowflake_join_database(
            rng, fact_rows=60, dim_rows=60, filter_rows=30, key_spread=6
        )
        return db, snowflake_join_expression(), Statistics.collect(db)

    def test_dp_picks_a_bushy_plan_on_the_snowflake(self):
        db, expr, stats = self._snowflake()
        dp_plan = plan(expr, stats=stats, ordering="dp")
        greedy_plan = plan(expr, stats=stats, ordering="greedy")
        assert _has_bushy_join(dp_plan)
        assert not _has_bushy_join(greedy_plan)  # greedy is left-deep only

    def test_dp_plan_is_equivalent_on_the_snowflake(self):
        db, expr, stats = self._snowflake()
        left_deep = evaluate_ct_optimized(expr, db, name="V")
        dp = evaluate_ct_ordered(expr, db, name="V", stats=stats, ordering="dp")
        assert left_deep.arity == dp.arity == expr.arity
        assert set(left_deep.rows) == set(dp.rows)

    def test_dp_explain_shows_bushy_shape_and_estimates(self):
        db, expr, stats = self._snowflake()
        explain: list[str] = []
        plan(expr, stats=stats, explain=explain, ordering="dp")
        assert len(explain) == 1
        line = explain[0]
        assert line.startswith("join order: ")
        # Bushy shape: two parenthesised subjoins, each with an estimate.
        assert line.count("><") == 3 and line.count("~") == 3, line

    def test_dp_is_deterministic(self):
        db, expr, stats = self._snowflake()
        assert repr(plan(expr, stats=stats, ordering="dp")) == repr(
            plan(expr, stats=stats, ordering="dp")
        )

    def test_dp_falls_back_to_greedy_above_the_leaf_threshold(self):
        db, expr, stats = self._snowflake()
        planned = plan(expr)  # rewrite only: fused joins, input order
        explain: list[str] = []
        fallback = order_joins_dp(planned, stats, explain, max_dp_leaves=2)
        assert repr(fallback) == repr(order_joins(planned, stats))
        assert any(line.startswith("dp fallback: 4 leaves > 2") for line in explain)

    def test_dp_handles_disconnected_join_graphs(self):
        # Two independent equijoins under one product: the join graph has
        # two connected components, joined by a cross product.
        rng = random.Random(13)
        db = random_nway_join_database(rng, 4, rows_per_table=2)
        from repro.relational import ColEq, Select

        expr = Select(
            Product(
                Product(Scan("R0", 2), Scan("R1", 2)),
                Product(Scan("R2", 2), Scan("R3", 2)),
            ),
            [ColEq(0, 2), ColEq(4, 6)],
        )
        assert_all_paths_agree(expr, db)

    def test_plan_rejects_unknown_ordering(self):
        with pytest.raises(PlanError):
            plan(Scan("R", 2), stats=Statistics(), ordering="exhaustive")
