"""Tests for the repro command line interface."""

import json

import pytest

from repro import Instance, TableDatabase, c_table, codd_table, i_table
from repro.cli import (
    EXIT_NO,
    EXIT_USAGE,
    EXIT_YES,
    load_database_file,
    load_instance_file,
    main,
)
from repro.io import dumps_database, dumps_instance, json_dumps


@pytest.fixture
def db_file(tmp_path):
    db = TableDatabase.single(
        c_table(
            "R",
            2,
            [((0, 1),), ((0, "?x"), "x != 1")],
        )
    )
    path = tmp_path / "db.pwt"
    path.write_text(dumps_database(db))
    return str(path)


@pytest.fixture
def world_file(tmp_path):
    path = tmp_path / "world.pwi"
    path.write_text(dumps_instance(Instance({"R": [(0, 1), (0, 2)]})))
    return str(path)


@pytest.fixture
def bad_world_file(tmp_path):
    path = tmp_path / "bad.pwi"
    path.write_text(dumps_instance(Instance({"R": [(5, 5)]})))
    return str(path)


class TestShowAndClassify:
    def test_show(self, db_file, capsys):
        assert main(["show", db_file]) == EXIT_YES
        out = capsys.readouterr().out
        assert "R/2" in out and "c-table" in out

    def test_classify(self, db_file, capsys):
        assert main(["classify", db_file]) == EXIT_YES
        out = capsys.readouterr().out
        assert "R: c" in out and "database: c" in out

    def test_classify_codd(self, tmp_path, capsys):
        db = TableDatabase.single(codd_table("S", 1, [("?y",)]))
        path = tmp_path / "s.pwt"
        path.write_text(dumps_database(db))
        assert main(["classify", str(path)]) == EXIT_YES
        assert "S: codd" in capsys.readouterr().out


class TestWorlds:
    def test_worlds_listed(self, db_file, capsys):
        assert main(["worlds", db_file]) == EXIT_YES
        out = capsys.readouterr().out
        assert "-- world 1" in out and "%instance" in out

    def test_worlds_cap(self, db_file, capsys):
        assert main(["worlds", db_file, "--max", "1"]) == EXIT_YES
        out = capsys.readouterr().out
        assert "truncated" in out

    def test_unsatisfiable_reported(self, tmp_path, capsys):
        db = TableDatabase.single(
            i_table("R", 1, [("?x",)], "x != x")
        )
        path = tmp_path / "empty.pwt"
        path.write_text(dumps_database(db))
        assert main(["worlds", str(path)]) == EXIT_YES
        assert "no possible worlds" in capsys.readouterr().out


class TestDecisions:
    def test_member_yes(self, db_file, world_file, capsys):
        assert main(["member", db_file, world_file]) == EXIT_YES
        assert "member" in capsys.readouterr().out

    def test_member_no(self, db_file, bad_world_file, capsys):
        assert main(["member", db_file, bad_world_file]) == EXIT_NO
        assert "not a member" in capsys.readouterr().out

    def test_possible_yes(self, db_file, tmp_path, capsys):
        facts = tmp_path / "facts.pwi"
        facts.write_text(dumps_instance(Instance({"R": [(0, 2)]})))
        assert main(["possible", db_file, str(facts)]) == EXIT_YES
        assert "possible" in capsys.readouterr().out

    def test_possible_no(self, db_file, bad_world_file, capsys):
        assert main(["possible", db_file, bad_world_file]) == EXIT_NO
        assert "impossible" in capsys.readouterr().out

    def test_certain_yes(self, db_file, tmp_path, capsys):
        facts = tmp_path / "facts.pwi"
        facts.write_text(dumps_instance(Instance({"R": [(0, 1)]})))
        assert main(["certain", db_file, str(facts)]) == EXIT_YES
        assert "certain" in capsys.readouterr().out

    def test_certain_no(self, db_file, tmp_path, capsys):
        facts = tmp_path / "facts.pwi"
        facts.write_text(dumps_instance(Instance({"R": [(0, 2)]})))
        assert main(["certain", db_file, str(facts)]) == EXIT_NO
        assert "not certain" in capsys.readouterr().out

    def test_contains_reflexive(self, db_file, capsys):
        assert main(["contains", db_file, db_file]) == EXIT_YES
        assert "contained" in capsys.readouterr().out

    def test_contains_no(self, db_file, tmp_path, capsys):
        other = TableDatabase.single(codd_table("R", 2, [(9, 9)]))
        path = tmp_path / "other.pwt"
        path.write_text(dumps_database(other))
        assert main(["contains", db_file, str(path)]) == EXIT_NO
        assert "not contained" in capsys.readouterr().out


class TestConvert:
    def test_text_to_json_and_back(self, db_file, tmp_path, capsys):
        assert main(["convert", db_file, "--to", "json"]) == EXIT_YES
        blob = capsys.readouterr().out
        data = json.loads(blob)
        assert data["kind"] == "table-database"
        json_path = tmp_path / "db.json"
        json_path.write_text(blob)
        assert main(["convert", str(json_path), "--to", "text"]) == EXIT_YES
        text = capsys.readouterr().out
        assert "%table R/2" in text
        assert load_database_file(db_file) == load_database_file(str(json_path))

    def test_instance_conversion(self, world_file, capsys):
        assert main(["convert", world_file, "--to", "json"]) == EXIT_YES
        data = json.loads(capsys.readouterr().out)
        assert data["kind"] == "instance"


class TestFileLoading:
    def test_json_database_autodetected(self, tmp_path):
        db = TableDatabase.single(codd_table("R", 1, [(7,)]))
        path = tmp_path / "db.json"
        path.write_text(json_dumps(db))
        assert load_database_file(str(path)) == db

    def test_json_instance_autodetected(self, tmp_path):
        inst = Instance({"R": [(1,)]})
        path = tmp_path / "w.json"
        path.write_text(json_dumps(inst))
        assert load_instance_file(str(path)) == inst

    def test_missing_file(self, capsys):
        assert main(["show", "/nonexistent/db.pwt"]) == EXIT_USAGE
        assert "cannot read" in capsys.readouterr().err

    def test_malformed_file(self, tmp_path, capsys):
        path = tmp_path / "junk.pwt"
        path.write_text("%table R\n")
        assert main(["show", str(path)]) == EXIT_USAGE
        assert "repro:" in capsys.readouterr().err

    def test_usage_error(self):
        assert main(["frobnicate"]) == EXIT_USAGE

    def test_no_command(self):
        assert main([]) == EXIT_USAGE


class TestEval:
    def test_eval_literal_query(self, db_file, capsys):
        assert main(["eval", db_file, "Q(Y) :- R(X, Y)."]) == EXIT_YES
        out = capsys.readouterr().out
        assert "Q/1" in out

    def test_eval_query_file(self, db_file, tmp_path, capsys):
        query = tmp_path / "q.dl"
        query.write_text("Q(X, Z) :- R(X, Y), R(Y, Z).")
        assert main(["eval", db_file, str(query)]) == EXIT_YES
        assert "Q/2" in capsys.readouterr().out

    def test_eval_naive_and_planned_agree(self, db_file, capsys):
        # Row *order* is not part of the contract (the hash path groups by
        # bucket), so compare the printed rows as sets.
        rule = "Q(X, Z) :- R(X, Y), R(Y, Z)."
        assert main(["eval", db_file, rule]) == EXIT_YES
        planned = capsys.readouterr().out.splitlines()
        assert main(["eval", db_file, rule, "--naive"]) == EXIT_YES
        naive = capsys.readouterr().out.splitlines()
        assert planned[0] == naive[0]  # the header line
        assert set(planned[1:]) == set(naive[1:])

    def test_eval_prints_plan(self, db_file, capsys):
        assert main(["eval", db_file, "Q(X, Z) :- R(X, Y), R(Y, Z).", "--plan"]) == EXIT_YES
        out = capsys.readouterr().out
        assert "-- plan:" in out and "Join(" in out

    def test_eval_bad_query(self, db_file, capsys):
        assert main(["eval", db_file, "this is not a rule"]) == EXIT_USAGE
        assert "repro:" in capsys.readouterr().err

    def test_eval_missing_query_file(self, db_file, capsys):
        assert main(["eval", db_file, "quary.dl"]) == EXIT_USAGE
        assert "no such file" in capsys.readouterr().err

    def test_eval_empty_query(self, db_file, capsys):
        assert main(["eval", db_file, ""]) == EXIT_USAGE
        assert "at least one rule" in capsys.readouterr().err

    def test_eval_unknown_relation(self, db_file, capsys):
        assert main(["eval", db_file, "Q(X) :- T(X)."]) == EXIT_USAGE
        assert "unknown relation" in capsys.readouterr().err

    def test_eval_head_constant_rejected(self, db_file, capsys):
        assert main(["eval", db_file, "Q(0) :- R(X, Y), X = 0."]) == EXIT_USAGE
        assert "repro:" in capsys.readouterr().err


class TestEvalExplain:
    def test_explain_prints_stats_and_join_order(self, db_file, capsys):
        rule = "Q(X) :- R(X, Y), R(Y, Z), R(Z, W)."
        assert main(["eval", db_file, rule, "--explain"]) == EXIT_YES
        out = capsys.readouterr().out
        assert "-- stats: R/2: 2 rows" in out
        assert "-- join order:" in out

    def test_explain_two_way_join_reports_unchanged(self, db_file, capsys):
        rule = "Q(X, Z) :- R(X, Y), R(Y, Z)."
        assert main(["eval", db_file, rule, "--explain"]) == EXIT_YES
        assert "join order: unchanged" in capsys.readouterr().out

    def test_explain_does_not_change_the_answer(self, db_file, capsys):
        rule = "Q(X) :- R(X, Y), R(Y, Z), R(Z, W)."
        assert main(["eval", db_file, rule]) == EXIT_YES
        plain = [l for l in capsys.readouterr().out.splitlines() if not l.startswith("--")]
        assert main(["eval", db_file, rule, "--explain"]) == EXIT_YES
        explained = [
            l for l in capsys.readouterr().out.splitlines() if not l.startswith("--")
        ]
        assert set(plain) == set(explained)

    def test_explain_with_naive_warns_and_shows_the_expression(self, db_file, capsys):
        # --explain cannot describe a plan the naive evaluator never builds,
        # but it must not be a silent no-op either.
        rule = "Q(X, Z) :- R(X, Y), R(Y, Z)."
        assert main(["eval", db_file, rule, "--naive", "--explain"]) == EXIT_YES
        captured = capsys.readouterr()
        assert "join order" not in captured.out and "-- stats" not in captured.out
        assert "--explain has no effect with --naive" in captured.err
        assert "-- expression:" in captured.out

    def test_explain_prints_bushy_dp_shape(self, db_file, capsys):
        rule = "Q(X) :- R(X, Y), R(Y, Z), R(Z, W), R(W, V)."
        assert main(["eval", db_file, rule, "--explain"]) == EXIT_YES
        out = capsys.readouterr().out
        order_lines = [l for l in out.splitlines() if l.startswith("-- join order:")]
        assert len(order_lines) == 1
        assert "><" in order_lines[0] and "~" in order_lines[0]

    def test_ordering_greedy_agrees_with_dp(self, db_file, capsys):
        rule = "Q(X) :- R(X, Y), R(Y, Z), R(Z, W)."
        assert main(["eval", db_file, rule, "--ordering", "dp"]) == EXIT_YES
        dp = capsys.readouterr().out.splitlines()
        assert main(["eval", db_file, rule, "--ordering", "greedy"]) == EXIT_YES
        greedy = capsys.readouterr().out.splitlines()
        assert dp[0] == greedy[0]  # the header line
        assert set(dp[1:]) == set(greedy[1:])

    def test_eval_multiple_queries_share_one_invocation(self, db_file, capsys):
        first = "Q(X) :- R(X, Y)."
        second = "P(Y) :- R(X, Y)."
        assert main(["eval", db_file, first, second]) == EXIT_YES
        out = capsys.readouterr().out
        assert "-- query 1: Q" in out and "-- query 2: P" in out
        assert "Q/1" in out and "P/1" in out
