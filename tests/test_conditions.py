"""Unit tests for repro.core.conditions."""

import pytest

from repro.core.conditions import (
    BOOL_FALSE,
    BOOL_TRUE,
    BoolAnd,
    BoolAtom,
    BoolCondition,
    BoolOr,
    Conjunction,
    Eq,
    FALSE,
    Neq,
    TRUE,
    parse_atom,
    parse_conjunction,
)
from repro.core.terms import Constant, Variable

x, y, z = Variable("x"), Variable("y"), Variable("z")


class TestAtoms:
    def test_atoms_are_symmetric(self):
        assert Eq(x, y) == Eq(y, x)
        assert Neq(x, 0) == Neq(0, x)

    def test_equality_between_kinds(self):
        assert Eq(x, y) != Neq(x, y)

    def test_trivial_truth(self):
        assert Eq(x, x).is_trivially_true()
        assert Neq(1, 2).is_trivially_true()
        assert Eq(1, 2).is_trivially_false()
        assert Neq(x, x).is_trivially_false()
        assert not Eq(x, 1).is_trivially_true()
        assert not Eq(x, 1).is_trivially_false()

    def test_negation_roundtrip(self):
        atom = Eq(x, 3)
        assert atom.negated() == Neq(x, 3)
        assert atom.negated().negated() == atom

    def test_substitute(self):
        assert Eq(x, y).substitute({x: Constant(1)}) == Eq(1, y)

    def test_holds_for(self):
        lookup = {x: Constant(1), y: Constant(2)}.get
        def lk(t):
            return lookup(t) or t
        assert Neq(x, y).holds_for(lk)
        assert not Eq(x, y).holds_for(lk)


class TestConjunctionSatisfiability:
    def test_empty_is_true_and_satisfiable(self):
        assert TRUE.is_satisfiable()
        assert len(TRUE) == 0

    def test_false_is_unsatisfiable(self):
        assert not FALSE.is_satisfiable()

    def test_equality_chain_to_conflicting_constants(self):
        conj = Conjunction([Eq(x, y), Eq(y, 1), Eq(x, 2)])
        assert not conj.is_satisfiable()

    def test_inequality_within_merged_class(self):
        conj = Conjunction([Eq(x, y), Neq(x, y)])
        assert not conj.is_satisfiable()

    def test_transitive_inequality_violation(self):
        conj = Conjunction([Eq(x, y), Eq(y, z), Neq(x, z)])
        assert not conj.is_satisfiable()

    def test_satisfiable_mixed(self):
        conj = Conjunction([Eq(x, 1), Neq(y, 1), Neq(y, z)])
        assert conj.is_satisfiable()

    def test_inequalities_alone_always_satisfiable(self):
        conj = Conjunction([Neq(x, y), Neq(y, z), Neq(x, z), Neq(x, 0)])
        assert conj.is_satisfiable()


class TestSolve:
    def test_solve_produces_mgu_and_residual(self):
        conj = Conjunction([Eq(x, y), Eq(y, 1), Neq(z, x)])
        solved = conj.solve()
        assert solved is not None
        mgu, residual = solved
        assert mgu[x] == Constant(1)
        assert mgu[y] == Constant(1)
        assert residual == Conjunction([Neq(z, 1)])

    def test_solve_unsat_returns_none(self):
        assert Conjunction([Eq(x, 1), Eq(x, 2)]).solve() is None

    def test_solve_detects_residual_contradiction(self):
        assert Conjunction([Eq(x, 1), Neq(x, 1)]).solve() is None

    def test_variable_representative_is_deterministic(self):
        solved = Conjunction([Eq(x, y)]).solve()
        mgu, _ = solved
        # x sorts before y, so y maps to x.
        assert mgu == {y: x}


class TestImplication:
    def test_implies_equality_by_closure(self):
        conj = Conjunction([Eq(x, y), Eq(y, z)])
        assert conj.implies(Eq(x, z))

    def test_implies_inequality_by_refutation(self):
        conj = Conjunction([Eq(x, 1)])
        assert conj.implies(Neq(x, 2))

    def test_unsatisfiable_implies_everything(self):
        assert FALSE.implies(Eq(x, 1))

    def test_does_not_imply_unrelated(self):
        assert not TRUE.implies(Eq(x, 1))

    def test_equivalence(self):
        a = Conjunction([Eq(x, y), Eq(y, 1)])
        b = Conjunction([Eq(x, 1), Eq(y, 1)])
        assert a.equivalent(b)


class TestConjunctionAlgebra:
    def test_and_also_merges_and_dedupes(self):
        a = Conjunction([Eq(x, 1)])
        b = a.and_also(Conjunction([Eq(x, 1), Neq(y, 2)]), Neq(z, 3))
        assert set(b.atoms) == {Eq(x, 1), Neq(y, 2), Neq(z, 3)}

    def test_substitute(self):
        conj = Conjunction([Eq(x, y)]).substitute({y: Constant(5)})
        assert conj == Conjunction([Eq(x, 5)])

    def test_simplified_drops_trivial(self):
        conj = Conjunction([Eq(x, x), Neq(1, 2), Eq(x, 1)])
        assert conj.simplified() == Conjunction([Eq(x, 1)])

    def test_simplified_collapses_unsat(self):
        assert Conjunction([Eq(x, 1), Eq(x, 2)]).simplified() == FALSE

    def test_hash_and_order_canonical(self):
        a = Conjunction([Eq(x, 1), Neq(y, 2)])
        b = Conjunction([Neq(2, y), Eq(1, x)])
        assert a == b and hash(a) == hash(b)


class TestBoolConditions:
    def test_atom_dnf(self):
        assert BoolAtom(Eq(x, 1)).to_dnf() == (Conjunction([Eq(x, 1)]),)

    def test_trivially_false_atom_dnf_empty(self):
        assert BoolAtom(Eq(1, 2)).to_dnf() == ()

    def test_and_distributes_over_or(self):
        cond = BoolAnd(
            (
                BoolOr((BoolAtom(Eq(x, 1)), BoolAtom(Eq(x, 2)))),
                BoolAtom(Neq(y, 0)),
            )
        )
        dnf = cond.to_dnf()
        assert set(dnf) == {
            Conjunction([Eq(x, 1), Neq(y, 0)]),
            Conjunction([Eq(x, 2), Neq(y, 0)]),
        }

    def test_unsatisfiable_branches_pruned(self):
        cond = BoolAnd(
            (
                BoolOr((BoolAtom(Eq(x, 1)), BoolAtom(Eq(x, 2)))),
                BoolAtom(Eq(x, 2)),
            )
        )
        assert cond.to_dnf() == (Conjunction([Eq(x, 2)]),)

    def test_subsumed_disjuncts_removed(self):
        cond = BoolOr(
            (
                BoolAtom(Eq(x, 1)),
                BoolAnd((BoolAtom(Eq(x, 1)), BoolAtom(Eq(y, 2)))),
            )
        )
        assert cond.to_dnf() == (Conjunction([Eq(x, 1)]),)

    def test_bool_constants(self):
        assert BOOL_TRUE.to_dnf() == (TRUE,)
        assert BOOL_FALSE.to_dnf() == ()

    def test_negation_nnf(self):
        cond = BoolAnd((BoolAtom(Eq(x, 1)), BoolAtom(Neq(y, 2))))
        negated = cond.negated()
        assert set(negated.to_dnf()) == {
            Conjunction([Neq(x, 1)]),
            Conjunction([Eq(y, 2)]),
        }

    def test_satisfied_by(self):
        cond = BoolOr((BoolAtom(Eq(x, 1)), BoolAtom(Eq(x, 2))))
        assert cond.satisfied_by(lambda t: Constant(2) if t == x else t)
        assert not cond.satisfied_by(lambda t: Constant(3) if t == x else t)

    def test_from_conjunction(self):
        cond = BoolCondition.from_conjunction(Conjunction([Eq(x, 1), Neq(y, 2)]))
        assert cond.to_dnf() == (Conjunction([Eq(x, 1), Neq(y, 2)]),)


class TestParsing:
    def test_parse_atom_variants(self):
        assert parse_atom("x = y") == Eq(x, y)
        assert parse_atom("x != 0") == Neq(x, 0)
        assert parse_atom("x ≠ 0") == Neq(x, 0)

    def test_parse_quoted_string_constant(self):
        atom = parse_atom("x = 'ann'")
        assert atom == Eq(x, Constant("ann"))

    def test_parse_conjunction(self):
        conj = parse_conjunction("x != 0, y != z")
        assert set(conj.atoms) == {Neq(x, 0), Neq(y, z)}

    def test_parse_true(self):
        assert parse_conjunction("true") == TRUE
        assert parse_conjunction("") == TRUE

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_atom("x < y")
