"""Tests for valuations, canonical enumeration and the rep semantics.

Includes the paper's Figure 1 examples: tables Ta..Te with the instances
Ia..Ie listed beneath them, plus Example 2.1's valuation.
"""

import pytest

from repro.core.conditions import Conjunction, Eq, Neq, parse_conjunction
from repro.core.tables import CTable, Row, TableDatabase, c_table, e_table, g_table, i_table, codd_table
from repro.core.terms import Constant, Variable
from repro.core.valuations import (
    Valuation,
    freeze_variables,
    iter_canonical_valuations,
    iter_valuations,
)
from repro.core.worlds import (
    any_world,
    enumerate_worlds,
    every_world,
    iter_worlds,
    world_of,
)
from repro.relational.instance import Instance

x, y, z, v = Variable("x"), Variable("y"), Variable("z"), Variable("v")


# -- the five representations of Figure 1 -----------------------------------


def fig1_table_a():
    return codd_table("T", 3, [(0, 1, x), (y, z, 1), (2, 0, v)])


def fig1_table_b():
    return e_table("T", 3, [(0, 1, x), (x, z, 1), (2, 0, z)])


def fig1_table_c():
    return i_table("T", 3, [(0, 1, x), (y, z, 1), (2, 0, v)], "x != 0, y != z")


def fig1_table_d():
    return g_table("T", 3, [(0, 1, x), (x, z, 1), (2, 0, z)], "x != z")


def fig1_table_e():
    return c_table(
        "T",
        2,
        [
            ((0, 1), "z = z"),
            ((0, "?x"), "y = 0"),
            (("?y", "?x"), "x != y"),
        ],
        "x != 1, y != 2",
    )


class TestExample21:
    def test_sigma_of_ta_is_ia(self):
        """Example 2.1: sigma(x)=2, sigma(y)=3, sigma(z)=0, sigma(v)=5."""
        sigma = Valuation(
            {x: Constant(2), y: Constant(3), z: Constant(0), v: Constant(5)}
        )
        world = world_of(TableDatabase.single(fig1_table_a()), sigma)
        assert world == Instance({"T": [(0, 1, 2), (3, 0, 1), (2, 0, 5)]})


class TestFig1Memberships:
    """Each figure lists an instance next to its table; check membership."""

    def test_instance_a(self):
        from repro.core.membership import is_member

        ia = Instance({"T": [(0, 1, 2), (2, 0, 1), (2, 0, 0)]})
        assert is_member(ia, TableDatabase.single(fig1_table_a()))

    def test_instance_b(self):
        from repro.core.membership import is_member

        ib = Instance({"T": [(0, 1, 2), (2, 0, 1), (2, 0, 0)]})
        assert is_member(ib, TableDatabase.single(fig1_table_b()))

    def test_instance_c(self):
        from repro.core.membership import is_member

        ic = Instance({"T": [(0, 1, 2), (3, 0, 1), (2, 0, 5)]})
        assert is_member(ic, TableDatabase.single(fig1_table_c()))

    def test_instance_c_violating_condition_rejected(self):
        from repro.core.membership import is_member

        # x = 0 violates the global inequality x != 0.
        bad = Instance({"T": [(0, 1, 0), (3, 2, 1), (2, 0, 5)]})
        assert not is_member(bad, TableDatabase.single(fig1_table_c()))

    def test_instance_d(self):
        from repro.core.membership import is_member

        instance = Instance({"T": [(0, 1, 2), (2, 0, 1), (2, 0, 0)]})
        assert is_member(instance, TableDatabase.single(fig1_table_d()))

    def test_instance_d_equal_x_z_rejected(self):
        from repro.core.membership import is_member

        # Requires x = z = 1, violating x != z.
        bad = Instance({"T": [(0, 1, 1), (1, 1, 1), (2, 0, 1)]})
        assert not is_member(bad, TableDatabase.single(fig1_table_d()))

    def test_instance_e(self):
        from repro.core.membership import is_member

        ie = Instance({"T": [(0, 1), (3, 2)]})
        assert is_member(ie, TableDatabase.single(fig1_table_e()))


class TestValuation:
    def test_identity_on_constants(self):
        sigma = Valuation({x: Constant(1)})
        assert sigma(Constant(9)) == Constant(9)
        assert sigma(x) == Constant(1)

    def test_missing_variable_raises(self):
        with pytest.raises(KeyError):
            Valuation({})(x)

    def test_type_checking(self):
        with pytest.raises(TypeError):
            Valuation({x: 1})  # raw int, not Constant
        with pytest.raises(TypeError):
            Valuation({"x": Constant(1)})

    def test_apply_table_respects_local_conditions(self):
        table = c_table("R", 1, [((1,), "x = 0"), ((2,),)])
        sigma = Valuation({x: Constant(0)})
        assert set(sigma.apply_table(table).facts) == {
            (Constant(1),),
            (Constant(2),),
        }
        sigma2 = Valuation({x: Constant(5)})
        assert set(sigma2.apply_table(table).facts) == {(Constant(2),)}

    def test_extended(self):
        sigma = Valuation({x: Constant(1)}).extended({y: Constant(2)})
        assert sigma(y) == Constant(2)


class TestCanonicalEnumeration:
    def test_plain_product_count(self):
        vals = list(iter_valuations([x, y], [Constant(0), Constant(1)]))
        assert len(vals) == 4

    def test_canonical_count_two_vars_two_constants(self):
        # Each variable: 2 base constants or a fresh one with restricted
        # growth: patterns (b,b):4, (b,f1):2, (f1,b):2, (f1,f1):1, (f1,f2):1.
        vals = list(iter_canonical_valuations([x, y], [Constant(0), Constant(1)]))
        assert len(vals) == 10

    def test_canonical_no_constants(self):
        # Restricted growth strings: 1 var -> 1; the Bell numbers follow.
        assert len(list(iter_canonical_valuations([x], []))) == 1
        assert len(list(iter_canonical_valuations([x, y], []))) == 2

    def test_freeze_assigns_distinct_fresh(self):
        sigma = freeze_variables([x, y], avoid=[Constant("@a0")])
        assert sigma[x] != sigma[y]
        assert sigma[x] != Constant("@a0") and sigma[y] != Constant("@a0")


class TestWorlds:
    def test_codd_table_world_count(self):
        # One variable over {0} plus fresh: canonical worlds = 2.
        table = CTable("R", 1, [(0,), (x,)])
        worlds = enumerate_worlds(TableDatabase.single(table))
        assert len(worlds) == 2  # x = 0 collapses; x fresh keeps two facts

    def test_global_condition_filters_worlds(self):
        table = CTable("R", 1, [(x,)], Conjunction([Neq(x, 0)]))
        db = TableDatabase.single(table)
        worlds = enumerate_worlds(db, extra_constants=[Constant(0)])
        assert Instance({"R": [(0,)]}) not in worlds
        assert worlds  # still inhabited

    def test_unsatisfiable_global_means_no_worlds(self):
        table = CTable("R", 1, [(x,)], Conjunction([Eq(x, 0), Neq(x, 0)]))
        assert enumerate_worlds(TableDatabase.single(table)) == set()

    def test_local_conditions_can_drop_rows(self):
        table = c_table("R", 1, [((1,), "x = 0")])
        worlds = enumerate_worlds(TableDatabase.single(table))
        schema = TableDatabase.single(table).schema()
        assert Instance.empty(schema) in worlds
        assert Instance({"R": [(1,)]}) in worlds

    def test_any_and_every_world(self):
        table = CTable("R", 1, [(x,)])
        db = TableDatabase.single(table)
        assert any_world(db, lambda w: len(w["R"]) == 1) is not None
        assert every_world(db, lambda w: len(w["R"]) == 1)

    def test_view_worlds(self):
        from repro.queries import UCQQuery, atom, cq

        q = UCQQuery([cq(atom("Q", "X"), atom("R", "X", "Y"))])
        table = CTable("R", 2, [(1, x)])
        worlds = enumerate_worlds(TableDatabase.single(table), query=q)
        assert worlds == {Instance({"Q": [(1,)]})}
