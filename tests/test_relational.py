"""Unit tests for the relational substrate (schema, instances, RA)."""

import pytest

from repro.core.terms import Constant
from repro.relational import (
    ColEq,
    ColEqConst,
    ColNeq,
    ColNeqConst,
    DatabaseSchema,
    Difference,
    Instance,
    Intersect,
    Product,
    Project,
    Relation,
    RelationSchema,
    Scan,
    Select,
    Union,
    evaluate,
    evaluate_to_relation,
    natural_join,
)


class TestSchema:
    def test_relation_schema_validation(self):
        with pytest.raises(ValueError):
            RelationSchema("R", -1)
        with pytest.raises(TypeError):
            RelationSchema("", 2)

    def test_database_schema_rejects_duplicates(self):
        with pytest.raises(ValueError):
            DatabaseSchema([RelationSchema("R", 1), RelationSchema("R", 2)])

    def test_arity_vector(self):
        schema = DatabaseSchema({"R": 2, "S": 1})
        assert schema.arities() == (2, 1)
        assert schema.arity("S") == 1
        assert "R" in schema and "T" not in schema


class TestRelation:
    def test_facts_coerced_and_deduped(self):
        rel = Relation(2, [(1, 2), (1, 2), (3, 4)])
        assert len(rel) == 2
        assert (1, 2) in rel

    def test_arity_enforced(self):
        with pytest.raises(ValueError):
            Relation(2, [(1, 2, 3)])

    def test_set_operations(self):
        a = Relation(1, [(1,), (2,)])
        b = Relation(1, [(2,), (3,)])
        assert a.union(b) == Relation(1, [(1,), (2,), (3,)])
        assert a.intersection(b) == Relation(1, [(2,)])
        assert a.difference(b) == Relation(1, [(1,)])
        assert Relation(1, [(2,)]).issubset(a)

    def test_arity_mismatch_raises(self):
        with pytest.raises(ValueError):
            Relation(1, [(1,)]).union(Relation(2, [(1, 2)]))

    def test_rename(self):
        rel = Relation(2, [(1, 2)])
        renamed = rel.rename({Constant(1): Constant(9)})
        assert renamed == Relation(2, [(9, 2)])


class TestInstance:
    def test_construction_from_raw_rows(self):
        inst = Instance({"R": [(0, 1)], "S": [(1,)]})
        assert inst["R"].arity == 2
        assert inst.total_facts() == 2

    def test_empty_relation_needs_schema(self):
        with pytest.raises(ValueError):
            Instance({"R": []})
        schema = DatabaseSchema({"R": 3})
        inst = Instance({"R": []}, schema=schema)
        assert inst["R"].arity == 3

    def test_schema_fills_missing_relations(self):
        schema = DatabaseSchema({"R": 1, "S": 2})
        inst = Instance({"R": [(1,)]}, schema=schema)
        assert len(inst["S"]) == 0

    def test_equality_and_hash(self):
        a = Instance({"R": [(1, 2), (3, 4)]})
        b = Instance({"R": [(3, 4), (1, 2)]})
        assert a == b and hash(a) == hash(b)

    def test_issubset(self):
        small = Instance({"R": [(1, 2)]})
        big = Instance({"R": [(1, 2), (3, 4)]})
        assert small.issubset(big)
        assert not big.issubset(small)

    def test_constants(self):
        inst = Instance({"R": [(1, 2)], "S": [("a",)]})
        assert inst.constants() == {Constant(1), Constant(2), Constant("a")}

    def test_rename_genericity(self):
        inst = Instance({"R": [(1, 2)]})
        swapped = inst.rename({Constant(1): Constant(2), Constant(2): Constant(1)})
        assert swapped == Instance({"R": [(2, 1)]})

    def test_empty_instance(self):
        schema = DatabaseSchema({"R": 2})
        assert Instance.empty(schema)["R"] == Relation(2)


#: A small instance used throughout the RA tests.
def _db():
    return Instance(
        {
            "R": [(1, 2), (2, 3), (3, 1), (1, 1)],
            "S": [(1,), (2,)],
        }
    )


class TestAlgebraEvaluation:
    def test_scan(self):
        rel = evaluate_to_relation(Scan("S", 1), _db())
        assert rel == Relation(1, [(1,), (2,)])

    def test_scan_arity_mismatch(self):
        with pytest.raises(ValueError):
            evaluate_to_relation(Scan("S", 2), _db())

    def test_select_col_eq_col(self):
        expr = Select(Scan("R", 2), [ColEq(0, 1)])
        assert evaluate_to_relation(expr, _db()) == Relation(2, [(1, 1)])

    def test_select_col_neq_const(self):
        expr = Select(Scan("R", 2), [ColNeqConst(0, 1)])
        assert evaluate_to_relation(expr, _db()) == Relation(2, [(2, 3), (3, 1)])

    def test_select_conjunction_of_predicates(self):
        expr = Select(Scan("R", 2), [ColEqConst(0, 1), ColNeq(0, 1)])
        assert evaluate_to_relation(expr, _db()) == Relation(2, [(1, 2)])

    def test_project_permutes_and_duplicates(self):
        expr = Project(Scan("R", 2), [1, 0, 0])
        rel = evaluate_to_relation(expr, _db())
        assert (2, 1, 1) in rel and rel.arity == 3

    def test_product(self):
        expr = Product(Scan("S", 1), Scan("S", 1))
        assert len(evaluate_to_relation(expr, _db())) == 4

    def test_union_and_difference_and_intersect(self):
        r01 = Project(Scan("R", 2), [0])
        s = Scan("S", 1)
        assert evaluate_to_relation(Union(r01, s), _db()) == Relation(
            1, [(1,), (2,), (3,)]
        )
        assert evaluate_to_relation(Difference(r01, s), _db()) == Relation(1, [(3,)])
        assert evaluate_to_relation(Intersect(r01, s), _db()) == Relation(
            1, [(1,), (2,)]
        )

    def test_natural_join(self):
        # R join R on R.1 = R.0: paths of length two.
        expr = natural_join(Scan("R", 2), Scan("R", 2), on=[(1, 0)])
        rel = evaluate_to_relation(expr, _db())
        assert (1, 2, 3) in rel  # 1->2->3
        assert (3, 1, 2) in rel  # 3->1->2
        assert rel.arity == 3

    def test_vector_evaluation(self):
        out = evaluate({"A": Scan("S", 1), "B": Project(Scan("R", 2), [0])}, _db())
        assert set(out.names()) == {"A", "B"}

    def test_positivity_flag(self):
        positive = Select(Scan("R", 2), [ColEq(0, 1)])
        negative = Select(Scan("R", 2), [ColNeq(0, 1)])
        difference = Difference(Scan("S", 1), Scan("S", 1))
        assert positive.is_positive()
        assert not negative.is_positive()
        assert not difference.is_positive()

    def test_predicate_column_bounds_checked(self):
        with pytest.raises(ValueError):
            Select(Scan("S", 1), [ColEq(0, 1)])
        with pytest.raises(ValueError):
            Project(Scan("S", 1), [1])
