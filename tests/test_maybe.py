"""Tests for repro.extensions.maybe: Zaniolo-style maybe-tuples."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Instance,
    TableDatabase,
    enumerate_worlds,
    is_certain,
    is_member,
    is_possible,
)
from repro.core.conditions import Conjunction, Neq, parse_conjunction
from repro.core.terms import Constant, Variable
from repro.core.worlds import strong_canonicalize
from repro.extensions import MaybeRow, MaybeTable, maybe_database, maybe_table


def canon(worlds, m):
    """Canonicalise fresh constants so world sets compare up to isomorphism.

    The guard encoding introduces extra variables, so its canonical
    enumeration may use differently-indexed fresh constants than the
    direct semantics; both describe the same worlds up to |Delta|-fixing
    bijections (Proposition 2.1).
    """
    protected = set(m.to_ctable().constants())
    return {strong_canonicalize(w, protected) for w in worlds}


class TestMaybeRow:
    def test_repr_flags_maybe(self):
        assert repr(MaybeRow((1, 2), sure=False)).endswith("?")
        assert not repr(MaybeRow((1, 2), sure=True)).endswith("?")

    def test_equality_distinguishes_flag(self):
        assert MaybeRow((1,), True) != MaybeRow((1,), False)

    def test_immutable(self):
        row = MaybeRow((1,))
        with pytest.raises(AttributeError):
            row.sure = False


class TestMaybeTableConstruction:
    def test_constructor_splits_rows(self):
        m = maybe_table("R", 2, sure=[(0, 1)], maybe=[(2, 3), (4, "?x")])
        assert len(m.sure_rows()) == 1
        assert len(m.maybe_rows()) == 2

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError, match="arity"):
            maybe_table("R", 2, sure=[(0,)])

    def test_non_maybe_row_rejected(self):
        with pytest.raises(TypeError):
            MaybeTable("R", 1, [(0,)])

    def test_condition_string_parsed(self):
        m = maybe_table("R", 1, sure=[("?x",)], condition="x != 0")
        assert m.global_condition == parse_conjunction("x != 0")

    def test_duplicate_rows_deduplicated(self):
        m = maybe_table("R", 1, sure=[(0,), (0,)], maybe=[(1,), (1,)])
        assert len(m) == 2


class TestGuardEncoding:
    def test_sure_rows_have_no_condition(self):
        m = maybe_table("R", 1, sure=[(0,)], maybe=[(1,)])
        ct = m.to_ctable()
        sure = [r for r in ct.rows if not r.has_local_condition()]
        guarded = [r for r in ct.rows if r.has_local_condition()]
        assert len(sure) == 1 and len(guarded) == 1

    def test_guards_are_fresh(self):
        m = maybe_table("R", 1, maybe=[("?x",), ("?y",)])
        ct = m.to_ctable()
        guards = ct.variables() - {Variable("x"), Variable("y")}
        assert len(guards) == 2  # one distinct guard per maybe row

    def test_encoding_is_a_ctable(self):
        m = maybe_table("R", 1, maybe=[(1,)])
        assert m.to_ctable().classify() == "c"

    def test_pure_sure_table_encodes_to_plain_table(self):
        m = maybe_table("R", 2, sure=[(0, "?x")])
        assert m.to_ctable().classify() == "codd"

    def test_worlds_of_two_maybe_rows(self):
        m = maybe_table("R", 1, sure=[(0,)], maybe=[(1,), (2,)])
        worlds = m.worlds()
        expected = {
            Instance({"R": rows})
            for rows in (
                [(0,)],
                [(0,), (1,)],
                [(0,), (2,)],
                [(0,), (1,), (2,)],
            )
        }
        assert worlds == expected

    def test_encoding_matches_direct_semantics_ground(self):
        m = maybe_table("R", 1, sure=[(0,)], maybe=[(1,), (2,)])
        db = TableDatabase.single(m.to_ctable())
        assert enumerate_worlds(db) == m.worlds()

    def test_encoding_matches_direct_semantics_with_nulls(self):
        m = maybe_table("R", 2, sure=[(0, "?x")], maybe=[("?x", 1)])
        db = TableDatabase.single(m.to_ctable())
        assert canon(enumerate_worlds(db), m) == canon(m.worlds(), m)

    def test_encoding_respects_global_condition(self):
        m = maybe_table("R", 1, sure=[("?x",)], maybe=[(5,)], condition="x != 0")
        db = TableDatabase.single(m.to_ctable())
        worlds = canon(enumerate_worlds(db), m)
        assert worlds == canon(m.worlds(), m)
        zero = Constant(0)
        assert all((zero,) not in w["R"] for w in worlds)

    def test_empty_maybe_table(self):
        m = maybe_table("R", 1)
        db = TableDatabase.single(m.to_ctable())
        assert enumerate_worlds(db) == {Instance({"R": []}, schema=db.schema())} or (
            enumerate_worlds(db) == m.worlds()
        )


class TestDecisionProblemsViaEncoding:
    def test_membership(self):
        m = maybe_table("R", 1, sure=[(0,)], maybe=[(1,)])
        db = TableDatabase.single(m.to_ctable())
        assert is_member(Instance({"R": [(0,)]}), db)
        assert is_member(Instance({"R": [(0,), (1,)]}), db)
        assert not is_member(Instance({"R": [(1,)]}), db)  # sure row missing

    def test_possibility(self):
        m = maybe_table("R", 1, sure=[(0,)], maybe=[(1,)])
        db = TableDatabase.single(m.to_ctable())
        assert is_possible(Instance({"R": [(1,)]}), db)
        assert not is_possible(Instance({"R": [(2,)]}), db)

    def test_certainty(self):
        m = maybe_table("R", 1, sure=[(0,)], maybe=[(1,)])
        db = TableDatabase.single(m.to_ctable())
        assert is_certain(Instance({"R": [(0,)]}), db)
        assert not is_certain(Instance({"R": [(1,)]}), db)


class TestMaybeDatabase:
    def test_guards_disjoint_across_tables(self):
        m1 = maybe_table("R", 1, maybe=[(1,)])
        m2 = maybe_table("S", 1, maybe=[(2,)])
        db = maybe_database([m1, m2])
        r_vars = db["R"].variables()
        s_vars = db["S"].variables()
        assert not (r_vars & s_vars)

    def test_rejects_non_maybe_tables(self):
        with pytest.raises(TypeError):
            maybe_database([maybe_table("R", 1), "nope"])

    def test_vector_worlds(self):
        m1 = maybe_table("R", 1, sure=[(0,)], maybe=[(1,)])
        m2 = maybe_table("S", 1, maybe=[(2,)])
        db = maybe_database([m1, m2])
        worlds = enumerate_worlds(db)
        assert len(worlds) == 4  # independent subsets: 2 x 2


@st.composite
def _maybe_tables(draw):
    arity = draw(st.integers(1, 2))
    values = st.one_of(
        st.integers(0, 3),
        st.sampled_from(["?x", "?y"]),
    )
    n_sure = draw(st.integers(0, 2))
    n_maybe = draw(st.integers(0, 2))
    sure = [tuple(draw(values) for _ in range(arity)) for _ in range(n_sure)]
    maybe = [tuple(draw(values) for _ in range(arity)) for _ in range(n_maybe)]
    return maybe_table("R", arity, sure=sure, maybe=maybe)


class TestEncodingProperty:
    @settings(max_examples=40, deadline=None)
    @given(_maybe_tables())
    def test_guard_encoding_preserves_rep(self, m):
        db = TableDatabase.single(m.to_ctable())
        assert canon(enumerate_worlds(db), m) == canon(m.worlds(), m)
