"""Tests for repro.obs: the metrics registry, structured tracing and
EXPLAIN ANALYZE instrumentation.

These are the library-level tests (no HTTP); the server surfaces —
``/metrics``, trace-id headers, the ``analyze`` query flag — are covered
in ``tests/test_obs_server.py``.
"""

from __future__ import annotations

import json
import random
import threading

import pytest

from repro.core.tables import TableDatabase, codd_table
from repro.ctalgebra.evaluate import evaluate_ct_analyzed, evaluate_ct_ordered
from repro.obs.analyze import NodeAnalysis, PlanAnalysis, render_analysis
from repro.obs.metrics import (
    CounterGroup,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    counter_family,
    render_families,
)
from repro.obs.tracing import (
    SlowQueryLog,
    Trace,
    current_trace,
    new_trace_id,
    sanitize_trace_id,
    span,
    start_trace,
)
from repro.relational.stats import resolve_stats
from repro.server.pool import LatencyTracker
from repro.workloads import skewed_star_join_database, skewed_star_join_expression


# ---------------------------------------------------------------------------
# Histogram quantile edge cases (the old LatencyTracker gaps)
# ---------------------------------------------------------------------------


class TestHistogram:
    def test_empty_window_quantiles_are_zero(self):
        h = Histogram(window=8)
        assert h.quantile(0.5) == 0.0
        assert h.quantile(0.99) == 0.0
        assert h.summary() == {"count": 0, "window": 0, "mean": 0.0, "p50": 0.0, "p99": 0.0}

    def test_single_sample_is_every_quantile(self):
        h = Histogram(window=8)
        h.record(7.0)
        for fraction in (0.0, 0.01, 0.5, 0.99, 1.0):
            assert h.quantile(fraction) == 7.0
        assert h.summary()["p50"] == 7.0
        assert h.summary()["p99"] == 7.0

    def test_fraction_is_clamped(self):
        h = Histogram(window=8)
        for value in (1.0, 2.0, 3.0):
            h.record(value)
        assert h.quantile(-1.0) == 1.0
        assert h.quantile(0.0) == 1.0
        assert h.quantile(1.0) == 3.0
        assert h.quantile(5.0) == 3.0

    def test_window_boundary_evicts_oldest(self):
        h = Histogram(window=3)
        for value in (100.0, 1.0, 2.0, 3.0):
            h.record(value)
        # The 100.0 sample fell out of the window: max is now 3.0.
        assert h.quantile(1.0) == 3.0
        assert h.window == 3
        assert h.count == 4  # lifetime count keeps going

    def test_nearest_rank_exact(self):
        h = Histogram(window=200)
        for value in range(1, 101):
            h.record(float(value))
        assert h.quantile(0.50) == 50.0
        assert h.quantile(0.99) == 99.0
        assert h.quantile(1.0) == 100.0

    def test_lifetime_mean_vs_window(self):
        h = Histogram(window=2)
        for value in (1.0, 2.0, 3.0, 4.0):
            h.record(value)
        summary = h.summary()
        assert summary["count"] == 4
        assert summary["window"] == 2
        assert summary["mean"] == pytest.approx(2.5)  # lifetime, not window

    def test_collect_renders_as_summary_family(self):
        h = Histogram(window=8, name="test_hist_seconds", help="help text")
        h.record(0.5)
        text = render_families([h.collect()])
        assert "# TYPE test_hist_seconds summary" in text
        assert 'test_hist_seconds{quantile="0.5"} 0.5' in text
        assert "test_hist_seconds_count 1" in text


class TestLatencyTrackerEdgeCases:
    """Direct unit tests for the quantile edge cases (satellite #2)."""

    def test_empty_percentile(self):
        assert LatencyTracker().percentile(0.5) == 0.0

    def test_single_sample_all_percentiles(self):
        tracker = LatencyTracker()
        tracker.record(0.25)
        for fraction in (0.0, 0.5, 0.99, 1.0):
            assert tracker.percentile(fraction) == 0.25
        summary = tracker.summary()
        assert summary["p50_ms"] == pytest.approx(250.0)
        assert summary["p99_ms"] == pytest.approx(250.0)

    def test_window_minus_one_boundary(self):
        tracker = LatencyTracker(window=4)
        for seconds in (0.003, 0.001, 0.002):  # one under capacity
            tracker.record(seconds)
        assert tracker.percentile(1.0) == 0.003
        tracker.record(0.004)  # exactly at capacity
        assert tracker.percentile(1.0) == 0.004
        tracker.record(0.005)  # 0.003 evicted
        assert tracker.percentile(0.0) == 0.001
        assert tracker.summary()["window"] == 4

    def test_legacy_summary_shape(self):
        tracker = LatencyTracker()
        assert tracker.summary() == {
            "count": 0,
            "window": 0,
            "mean_ms": 0.0,
            "p50_ms": 0.0,
            "p99_ms": 0.0,
        }
        tracker.record(0.010)
        tracker.record(0.030)
        summary = tracker.summary()
        assert set(summary) == {"count", "window", "mean_ms", "p50_ms", "p99_ms"}
        assert summary["mean_ms"] == pytest.approx(20.0)


# ---------------------------------------------------------------------------
# CounterGroup
# ---------------------------------------------------------------------------


class TestCounterGroup:
    def test_is_a_dict(self):
        group = CounterGroup(("a", "b"))
        assert dict(group) == {"a": 0, "b": 0}
        group["a"] = 5
        assert group["a"] == 5
        assert json.loads(json.dumps(group)) == {"a": 5, "b": 0}

    def test_bump_and_snapshot(self):
        group = CounterGroup(("hits",))
        group.bump("hits")
        group.bump("hits", 3)
        group.bump("new_key")
        assert group.snapshot() == {"hits": 4, "new_key": 1}

    def test_concurrent_bumps_do_not_lose_updates(self):
        group = CounterGroup(("n",))

        def worker():
            for _ in range(1000):
                group.bump("n")

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert group["n"] == 8000


# ---------------------------------------------------------------------------
# Metrics registry + Prometheus rendering
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_duplicate_name_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total")
        with pytest.raises(ValueError):
            registry.gauge("repro_x_total")

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            MetricFamily("bad name!", "counter")

    def test_render_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_events_total", "events")
        gauge = registry.gauge("repro_depth", "depth")
        hist = registry.histogram("repro_lat_seconds", "latency", window=4)
        counter.inc()
        counter.inc(2)
        gauge.set(7)
        hist.record(0.5)
        text = registry.render_prometheus()
        assert "# HELP repro_events_total events" in text
        assert "# TYPE repro_events_total counter" in text
        assert "repro_events_total 3" in text
        assert "repro_depth 7" in text
        assert "# TYPE repro_lat_seconds summary" in text

    def test_every_sample_line_parses(self):
        import re

        registry = MetricsRegistry()
        registry.register_collector(
            lambda: [
                counter_family(
                    "repro_multi_total",
                    "per-key",
                    {"a": 1, "b": 2},
                    label="key",
                    extra={"db": 'we"ird\nname'},
                )
            ]
        )
        line_re = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [0-9eE+.NaInf-]+$"
        )
        for line in registry.render_prometheus().strip().splitlines():
            if line.startswith("#"):
                continue
            assert line_re.match(line), line

    def test_failing_collector_surfaces_as_error_gauge(self):
        registry = MetricsRegistry()

        def broken():
            raise RuntimeError("boom")

        registry.register_collector(broken)
        text = registry.render_prometheus()
        assert "repro_metrics_collector_errors 1" in text

    def test_gauge_callback_read_at_scrape(self):
        registry = MetricsRegistry()
        state = {"v": 1}
        registry.gauge("repro_live", fn=lambda: state["v"])
        assert "repro_live 1" in registry.render_prometheus()
        state["v"] = 9
        assert "repro_live 9" in registry.render_prometheus()


# ---------------------------------------------------------------------------
# Tracing
# ---------------------------------------------------------------------------


class TestTracing:
    def test_no_active_trace_by_default(self):
        assert current_trace() is None
        with span("anything"):  # must be a cheap no-op, not an error
            pass
        assert current_trace() is None

    def test_start_trace_activates_and_restores(self):
        with start_trace(trace_id="abc123") as trace:
            assert current_trace() is trace
            assert trace.trace_id == "abc123"
            with span("step", key="v"):
                pass
        assert current_trace() is None
        assert [s.name for s in trace.spans] == ["step"]
        assert trace.spans[0].attrs == {"key": "v"}

    def test_span_nesting_depths(self):
        with start_trace() as trace:
            with span("outer"):
                with span("inner"):
                    pass
        # Spans complete innermost-first.
        by_name = {s.name: s.depth for s in trace.spans}
        assert by_name == {"outer": 0, "inner": 1}

    def test_span_records_error(self):
        with start_trace() as trace:
            with pytest.raises(ValueError):
                with span("bad"):
                    raise ValueError("x")
        assert trace.spans[0].attrs["error"] == "ValueError"

    def test_threads_do_not_share_traces(self):
        seen = {}

        def worker(name):
            with start_trace(trace_id=name) as trace:
                with span("work"):
                    pass
                seen[name] = (current_trace().trace_id, len(trace.spans))

        threads = [
            threading.Thread(target=worker, args=(f"t{i}",)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert seen == {f"t{i}": (f"t{i}", 1) for i in range(4)}
        assert current_trace() is None

    def test_trace_to_json(self):
        with start_trace(trace_id="deadbeef") as trace:
            trace.add("external", 1.5, rows=3)
        data = trace.to_json()
        assert data["trace_id"] == "deadbeef"
        assert data["spans"][0]["name"] == "external"
        assert data["spans"][0]["attrs"] == {"rows": 3}

    def test_sanitize_trace_id(self):
        assert sanitize_trace_id("abc-123.X_z") == "abc-123.X_z"
        assert sanitize_trace_id(new_trace_id()) is not None
        assert sanitize_trace_id("") is None
        assert sanitize_trace_id("bad id") is None
        assert sanitize_trace_id("x" * 65) is None
        assert sanitize_trace_id(None) is None
        assert sanitize_trace_id(42) is None

    def test_new_ids_are_distinct(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64


class TestSlowQueryLog:
    def test_disabled_by_default(self):
        log = SlowQueryLog()
        assert not log.enabled
        assert not log.record("db", "Q(X) :- R(X, X).", 1000.0, "inline")
        assert log.stats()["total"] == 0

    def test_threshold_and_entries(self):
        lines = []
        log = SlowQueryLog(threshold_ms=5.0, emit=lines.append)
        assert not log.record("db", "fast", 4.9, "cache", "t1")
        assert log.record("db", "slow", 5.0, "inline", "t2")
        entries = log.entries()
        assert len(entries) == 1
        assert entries[0]["db"] == "db"
        assert entries[0]["ms"] == 5.0
        assert entries[0]["served_by"] == "inline"
        assert entries[0]["trace_id"] == "t2"
        assert len(lines) == 1 and "t2" in lines[0]

    def test_bounded_and_truncated(self):
        log = SlowQueryLog(threshold_ms=0.0, emit=lambda line: None)
        long_query = "Q(X) :- " + "R(X, X), " * 100
        for _ in range(SlowQueryLog.LIMIT + 10):
            log.record("db", long_query, 1.0, "inline")
        stats = log.stats()
        assert stats["total"] == SlowQueryLog.LIMIT + 10
        assert len(stats["recent"]) == SlowQueryLog.LIMIT
        assert len(stats["recent"][0]["query"]) <= SlowQueryLog.QUERY_LIMIT + 3


# ---------------------------------------------------------------------------
# EXPLAIN ANALYZE
# ---------------------------------------------------------------------------


def star_db_and_expr():
    rng = random.Random(7)
    db = skewed_star_join_database(rng, dim_rows=8, fact_rows=60)
    return db, skewed_star_join_expression()


class TestEvaluateAnalyzed:
    def test_same_result_as_ordered(self):
        db, expr = star_db_and_expr()
        stats = resolve_stats(None, db)
        expected = evaluate_ct_ordered(expr, db, name="V", stats=stats)
        table, analysis = evaluate_ct_analyzed(expr, db, name="V", stats=stats)
        assert table.arity == expected.arity
        assert set(table.rows) == set(expected.rows)
        assert isinstance(analysis, PlanAnalysis)

    def test_root_actual_rows_matches_result(self):
        db, expr = star_db_and_expr()
        table, analysis = evaluate_ct_analyzed(expr, db, name="V")
        assert analysis.root.actual_rows == len(table)

    def test_estimates_and_join_extras_present(self):
        db, expr = star_db_and_expr()
        _, analysis = evaluate_ct_analyzed(expr, db, name="V")

        joins = []

        def walk(node):
            if node.label.startswith("Join"):
                joins.append(node)
            for child in node.children:
                walk(child)

        walk(analysis.root)
        assert joins, "planned star join should contain Join nodes"
        for node in joins:
            assert node.est_rows is not None
            assert node.actual_rows >= 0
            assert node.ms >= 0.0
            assert "left_buckets" in node.extras
            assert "right_buckets" in node.extras

    def test_to_json_shape_and_rendering(self):
        db, expr = star_db_and_expr()
        _, analysis = evaluate_ct_analyzed(expr, db, name="V")
        data = analysis.to_json()
        assert data["kind"] == "plan"
        assert data["total_ms"] >= data["plan_ms"] >= 0.0
        assert data["root"]["op"]
        json.dumps(data)  # JSON-ready all the way down
        lines = analysis.lines()
        assert any("est=" in line and "actual=" in line for line in lines)
        # render_analysis over the JSON round-trip gives the same lines
        assert render_analysis(data) == lines

    def test_analyzed_ops_land_on_active_trace(self):
        db, expr = star_db_and_expr()
        with start_trace() as trace:
            evaluate_ct_analyzed(expr, db, name="V")
        op_spans = [s for s in trace.spans if s.name.startswith("op:")]
        assert op_spans
        assert all("rows" in s.attrs for s in op_spans)

    def test_node_analysis_json(self):
        node = NodeAnalysis("Scan(R)", 4.0, 4, 0.12345)
        data = node.to_json()
        assert data == {"op": "Scan(R)", "est_rows": 4.0, "actual_rows": 4, "ms": 0.123}

    def test_datalog_render(self):
        payload = {
            "kind": "datalog",
            "rounds": [
                {"round": 1, "deltas": {"R": 4}, "ms": 0.5},
                {"round": 2, "deltas": {"T": 2}, "ms": 0.25},
            ],
            "total_ms": 0.75,
        }
        lines = render_analysis(payload)
        assert any("round 1" in line for line in lines)
        assert any("dT=2" in line for line in lines)


class TestFixpointRoundStats:
    def test_round_stats_match_trace(self):
        from repro.queries.fixpoint import CTFixpoint
        from repro.relational.parser import parse_datalog

        db = TableDatabase.single(
            codd_table("R", 2, [("a", "b"), ("b", "c"), ("c", "d")])
        )
        program = CTFixpoint(
            parse_datalog("T(X, Y) :- R(X, Y). T(X, Z) :- T(X, Y), R(Y, Z).")
        )
        evaluation = program.evaluation(db)
        evaluation.database()
        rounds = evaluation.round_stats
        assert len(rounds) == evaluation.rounds
        assert [r["round"] for r in rounds] == list(range(1, evaluation.rounds + 1))
        for entry in rounds:
            assert entry["ms"] >= 0.0
            assert all(size > 0 for size in entry["deltas"].values())

    def test_fixpoint_rounds_land_on_active_trace(self):
        from repro.queries.fixpoint import CTFixpoint
        from repro.relational.parser import parse_datalog

        db = TableDatabase.single(codd_table("R", 2, [("a", "b"), ("b", "c")]))
        program = CTFixpoint(
            parse_datalog("T(X, Y) :- R(X, Y). T(X, Z) :- T(X, Y), R(Y, Z).")
        )
        with start_trace() as trace:
            evaluation = program.evaluation(db)
        round_spans = [s for s in trace.spans if s.name.startswith("fixpoint.round:")]
        assert len(round_spans) == len(evaluation.round_stats)
        assert round_spans
