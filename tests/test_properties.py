"""Property-based tests (hypothesis) for the core invariants.

Strategies build small random tables of every class, and the properties
pin the library's central contracts:

* every valuation's image is a member of ``rep`` — and the dedicated
  membership algorithms agree;
* normalisation and local-condition simplification preserve ``rep``;
* the c-table algebra commutes with ``rep``;
* containment is reflexive and order-consistent with the hierarchy;
* certainty implies possibility; uniqueness implies membership;
* conjunction satisfiability matches a brute-force finite check.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.core.conditions import Conjunction, Eq, Neq
from repro.core.containment import contains
from repro.core.certainty import is_certain
from repro.core.membership import is_member, membership_codd, membership_search
from repro.core.normalize import (
    UnsatisfiableTable,
    normalize_table,
    simplify_local_conditions,
)
from repro.core.possibility import is_possible
from repro.core.tables import CTable, Row, TableDatabase
from repro.core.terms import Constant, Variable
from repro.core.uniqueness import is_unique
from repro.core.valuations import Valuation
from repro.core.worlds import enumerate_worlds
from repro.ctalgebra import apply_ucq
from repro.queries import UCQQuery, atom, cq
from repro.relational.instance import Instance

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

constants = st.integers(min_value=0, max_value=2).map(Constant)
variables = st.sampled_from([Variable(n) for n in ("x", "y", "z")])
terms = st.one_of(constants, variables)


@st.composite
def conjunctions(draw, max_atoms=4):
    atoms = []
    for _ in range(draw(st.integers(0, max_atoms))):
        a, b = draw(terms), draw(terms)
        atoms.append(Eq(a, b) if draw(st.booleans()) else Neq(a, b))
    return Conjunction(atoms)


@st.composite
def rows(draw, arity=2, with_conditions=True):
    cells = tuple(draw(terms) for _ in range(arity))
    if with_conditions and draw(st.booleans()):
        condition = draw(conjunctions(max_atoms=2))
        return Row(cells, condition)
    return Row(cells)


@st.composite
def ctables(draw, max_rows=3, with_conditions=True, with_global=True):
    n = draw(st.integers(1, max_rows))
    table_rows = [draw(rows(with_conditions=with_conditions)) for _ in range(n)]
    glob = draw(conjunctions(max_atoms=2)) if with_global else Conjunction()
    return CTable("R", 2, table_rows, glob)


@st.composite
def satisfiable_ctables(draw, **kwargs):
    table = draw(ctables(**kwargs))
    if not table.global_condition.is_satisfiable():
        table = table.with_global_condition(Conjunction())
    return table


@st.composite
def valuations_for(draw, variables_needed):
    mapping = {}
    for var in sorted(variables_needed, key=lambda v: v.name):
        mapping[var] = draw(st.integers(0, 3).map(Constant))
    return Valuation(mapping)


class TestMembershipProperties:
    @SETTINGS
    @given(data=st.data())
    def test_valuation_image_is_member(self, data):
        table = data.draw(satisfiable_ctables())
        db = TableDatabase.single(table)
        sigma = data.draw(valuations_for(db.variables()))
        if not sigma.satisfies_global(db):
            return
        world = sigma.apply_database(db)
        assert membership_search(world, db)

    @SETTINGS
    @given(data=st.data())
    def test_codd_matching_equals_search(self, data):
        # Codd tables: distinct single-occurrence variables.
        n = data.draw(st.integers(1, 3))
        cells = []
        counter = 0
        for _ in range(n):
            row = []
            for _ in range(2):
                if data.draw(st.booleans()):
                    row.append(Variable(f"v{counter}"))
                    counter += 1
                else:
                    row.append(data.draw(constants))
            cells.append(tuple(row))
        table = CTable("R", 2, cells)
        db = TableDatabase.single(table)
        sigma = data.draw(valuations_for(db.variables()))
        world = sigma.apply_database(db)
        assert membership_codd(world, db) == membership_search(world, db)
        # And a perturbed candidate agrees too.
        ordered = sorted(
            world["R"].facts, key=lambda f: [c.sort_key() for c in f]
        )
        smaller = (
            Instance({"R": ordered[: len(ordered) - 1]})
            if len(ordered) > 1
            else world
        )
        assert membership_codd(smaller, db) == membership_search(smaller, db)


def _canonical_worlds(db, extra):
    """World set up to renaming of the fresh enumeration constants.

    Dropping a dead row or solving an equality can remove variables, which
    shifts the indices of the fresh constants; rep-equality is equality up
    to a bijection fixing the genuine constants.  The *strong* canonical
    form is required here: first-appearance renaming is not invariant, so
    with it two isomorphic worlds enumerated from differently-sized
    variable sets can spuriously compare unequal.
    """
    from repro.core.worlds import strong_canonicalize

    return {
        strong_canonicalize(w, extra)
        for w in enumerate_worlds(db, extra_constants=extra)
    }


class TestNormalizationProperties:
    @SETTINGS
    @given(table=ctables())
    def test_normalize_preserves_rep(self, table):
        db = TableDatabase.single(table)
        extra = db.constants()
        try:
            normalised = TableDatabase.single(normalize_table(table))
        except UnsatisfiableTable:
            assert enumerate_worlds(db, extra_constants=extra) == set()
            return
        assert _canonical_worlds(db, extra) == _canonical_worlds(normalised, extra)

    @SETTINGS
    @given(table=ctables())
    def test_simplify_preserves_rep(self, table):
        db = TableDatabase.single(table)
        extra = db.constants()
        simplified = TableDatabase.single(simplify_local_conditions(table))
        assert _canonical_worlds(db, extra) == _canonical_worlds(simplified, extra)


class TestAlgebraProperties:
    @SETTINGS
    @given(table=satisfiable_ctables(max_rows=2))
    def test_ucq_folding_commutes(self, table):
        from repro.core.worlds import canonicalize_instance

        db = TableDatabase.single(table)
        query = UCQQuery([cq(atom("Q", "A"), atom("R", "A", "B"))])
        extra = sorted(db.constants() | query.constants(), key=Constant.sort_key)
        folded = apply_ucq(query, db)
        lhs = {
            canonicalize_instance(w, extra)
            for w in enumerate_worlds(folded, extra_constants=extra)
        }
        rhs = {
            canonicalize_instance(query(w), extra)
            for w in enumerate_worlds(db, extra_constants=extra)
        }
        assert lhs == rhs


class TestProblemRelationships:
    @SETTINGS
    @given(table=satisfiable_ctables())
    def test_containment_reflexive(self, table):
        db = TableDatabase.single(table)
        assert contains(db, db)

    @SETTINGS
    @given(data=st.data())
    def test_certain_implies_possible(self, data):
        table = data.draw(satisfiable_ctables())
        db = TableDatabase.single(table)
        sigma = data.draw(valuations_for(db.variables()))
        if not sigma.satisfies_global(db):
            return
        world = sigma.apply_database(db)
        facts = Instance({"R": list(world["R"].facts)[:1]}) if world["R"].facts else None
        if facts is None:
            return
        if is_certain(facts, db):
            assert is_possible(facts, db)

    @SETTINGS
    @given(data=st.data())
    def test_unique_implies_member(self, data):
        table = data.draw(satisfiable_ctables())
        db = TableDatabase.single(table)
        sigma = data.draw(valuations_for(db.variables()))
        if not sigma.satisfies_global(db):
            return
        world = sigma.apply_database(db)
        if is_unique(world, db):
            assert is_member(world, db)

    @SETTINGS
    @given(data=st.data())
    def test_member_implies_possible_subset(self, data):
        table = data.draw(satisfiable_ctables())
        db = TableDatabase.single(table)
        sigma = data.draw(valuations_for(db.variables()))
        if not sigma.satisfies_global(db):
            return
        world = sigma.apply_database(db)
        assert is_possible(world, db)


class TestConditionProperties:
    @SETTINGS
    @given(conj=conjunctions())
    def test_satisfiability_matches_bruteforce(self, conj):
        got = conj.is_satisfiable()
        pool = [Constant(i) for i in range(6)]  # enough spare values
        vs = sorted(conj.variables(), key=lambda v: v.name)
        brute = False
        import itertools

        for values in itertools.product(pool, repeat=len(vs)):
            table = dict(zip(vs, values))
            if conj.satisfied_by(lambda t: table.get(t, t)):
                brute = True
                break
        assert got == brute

    @SETTINGS
    @given(conj=conjunctions())
    def test_solve_witness_satisfies(self, conj):
        solved = conj.solve()
        if solved is None:
            assert not conj.is_satisfiable()
            return
        from repro.core.search import witness_valuation

        sigma = witness_valuation(conj, variables=conj.variables())
        assert conj.satisfied_by(sigma)

    @SETTINGS
    @given(a=conjunctions(), b=conjunctions())
    def test_implication_transitivity_with_conjunction(self, a, b):
        merged = a.and_also(b)
        if merged.is_satisfiable():
            assert merged.implies(a) and merged.implies(b)
