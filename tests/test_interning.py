"""Condition interning and memoised satisfiability.

The caches in :mod:`repro.core.conditions` are pure memoisation: every
cached verdict must equal what a fresh computation returns, including
after substitution and negation reshape a condition into one already
seen (or not).  ``solve()`` is used as the cache-free cross-check for
satisfiability (it re-runs congruence closure every call); DNF emptiness
cross-checks the trivially-false detector.
"""

from __future__ import annotations

import random

import pytest

from repro.core.conditions import (
    BOOL_FALSE,
    BOOL_TRUE,
    BoolAnd,
    BoolAtom,
    BoolOr,
    Conjunction,
    Eq,
    Neq,
    clear_condition_caches,
    condition_cache_stats,
    condition_is_trivially_false,
    conjoin,
    intern_conjunction,
)
from repro.core.terms import Constant, Variable

x, y, z = Variable("x"), Variable("y"), Variable("z")


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_condition_caches()
    yield
    clear_condition_caches()


def _random_conjunction(rng: random.Random) -> Conjunction:
    terms = [x, y, z, Constant(0), Constant(1), Constant(2)]
    atoms = []
    for _ in range(rng.randint(0, 4)):
        cls = Eq if rng.random() < 0.5 else Neq
        atoms.append(cls(rng.choice(terms), rng.choice(terms)))
    return Conjunction(atoms)


class TestSatisfiabilityCache:
    def test_cached_verdict_matches_fresh_computation(self):
        rng = random.Random(0x5A7)
        for _ in range(300):
            conj = _random_conjunction(rng)
            cached = conj.is_satisfiable()
            # solve() re-derives the closure on every call (no cache): the
            # two must agree, and a repeat lookup must not flip the verdict.
            assert cached == (conj.solve() is not None)
            assert conj.is_satisfiable() == cached

    def test_repeat_queries_hit_the_cache(self):
        conj = Conjunction([Eq(x, 1), Neq(x, y)])
        conj.is_satisfiable()
        before = condition_cache_stats()
        # A structurally equal conjunction shares the cache entry.
        Conjunction([Eq(x, 1), Neq(x, y)]).is_satisfiable()
        after = condition_cache_stats()
        assert after["sat_hits"] == before["sat_hits"] + 1
        assert after["sat_misses"] == before["sat_misses"]

    def test_consistency_under_substitution(self):
        rng = random.Random(0xBEE)
        values = [Constant(0), Constant(1), x, y]
        for _ in range(200):
            conj = _random_conjunction(rng)
            conj.is_satisfiable()  # prime the cache with the original
            mapping = {v: rng.choice(values) for v in (x, y, z)}
            substituted = conj.substitute(mapping)
            assert substituted.is_satisfiable() == (substituted.solve() is not None)

    def test_consistency_under_negation(self):
        rng = random.Random(0xD1CE)
        for _ in range(200):
            conj = _random_conjunction(rng)
            conj.is_satisfiable()
            for atom in conj.atoms:
                flipped = Conjunction(
                    [a for a in conj.atoms if a != atom] + [atom.negated()]
                )
                assert flipped.is_satisfiable() == (flipped.solve() is not None)

    def test_unsatisfiable_conjunction_stays_unsatisfiable(self):
        conj = Conjunction([Eq(x, 0), Eq(x, 1)])
        assert not conj.is_satisfiable()
        assert not conj.is_satisfiable()
        assert not Conjunction([Eq(x, 0), Eq(x, 1)]).is_satisfiable()


class TestInterning:
    def test_interning_is_idempotent_and_canonical(self):
        a = Conjunction([Eq(x, 1), Neq(y, 2)])
        b = Conjunction([Neq(y, 2), Eq(x, 1)])  # same canonical atom tuple
        assert intern_conjunction(a) is intern_conjunction(b)
        assert intern_conjunction(a) is intern_conjunction(a)

    def test_interned_instance_is_semantically_identical(self):
        a = Conjunction([Eq(x, 1)])
        canon = intern_conjunction(a)
        assert canon == a
        assert canon.is_satisfiable() == a.is_satisfiable()

    def test_conjoin_matches_and_also(self):
        rng = random.Random(0xF00)
        for _ in range(100):
            a, b = _random_conjunction(rng), _random_conjunction(rng)
            assert conjoin(a, b) == a.and_also(b)

    def test_conjoin_memoises(self):
        a, b = Conjunction([Eq(x, 1)]), Conjunction([Neq(y, 2)])
        first = conjoin(a, b)
        before = condition_cache_stats()["conjoin_hits"]
        assert conjoin(a, b) is first
        assert condition_cache_stats()["conjoin_hits"] == before + 1


class TestTriviallyFalseCache:
    def test_sound_against_dnf(self):
        rng = random.Random(0xFA15E)
        terms = [x, y, Constant(0), Constant(1)]
        for _ in range(200):
            atoms = [
                BoolAtom((Eq if rng.random() < 0.5 else Neq)(rng.choice(terms), rng.choice(terms)))
                for _ in range(rng.randint(1, 3))
            ]
            tree = (BoolAnd if rng.random() < 0.5 else BoolOr)(tuple(atoms))
            if condition_is_trivially_false(tree):
                # Trivially false must imply genuinely unsatisfiable.
                assert tree.to_dnf() == ()
            # Memoised verdicts are stable.
            assert condition_is_trivially_false(tree) == condition_is_trivially_false(tree)

    def test_constants(self):
        assert not condition_is_trivially_false(BOOL_TRUE)
        assert condition_is_trivially_false(BOOL_FALSE)

    def test_structural_cases(self):
        false_atom = BoolAtom(Neq(x, x))
        true_atom = BoolAtom(Eq(x, x))
        assert condition_is_trivially_false(false_atom)
        assert not condition_is_trivially_false(true_atom)
        assert condition_is_trivially_false(BoolAnd((true_atom, false_atom)))
        assert not condition_is_trivially_false(BoolOr((true_atom, false_atom)))
        assert condition_is_trivially_false(BoolOr((false_atom, false_atom)))

    def test_negation_consistency(self):
        # not(trivially false atom) is trivially true, never trivially false.
        atom = BoolAtom(Neq(x, x))
        assert condition_is_trivially_false(atom)
        assert not condition_is_trivially_false(atom.negated())

    def test_cache_hits_accumulate(self):
        tree = BoolAnd((BoolAtom(Eq(x, 1)), BoolAtom(Neq(x, x))))
        condition_is_trivially_false(tree)
        before = condition_cache_stats()["trivially_false_hits"]
        condition_is_trivially_false(tree)
        assert condition_cache_stats()["trivially_false_hits"] == before + 1


class TestLRUCacheEviction:
    """The bounded caches evict least-recently-used, not wholesale.

    The previous clear-on-overflow policy dropped hot entries with the
    cold; the LRU keeps entries that are continually re-used alive across
    arbitrarily many insertions of one-shot conditions (ROADMAP follow-up
    from PR 1).
    """

    def test_lru_unit_behaviour(self):
        from repro.core.conditions import _LRUCache

        cache = _LRUCache(limit=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes "a": "b" is now oldest
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert len(cache) == 2

    def test_put_refreshes_existing_key(self):
        from repro.core.conditions import _LRUCache

        cache = _LRUCache(limit=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # overwrite refreshes recency, keeps size
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert "b" not in cache
        assert len(cache) == 2

    def test_hot_sat_entries_survive_overflow(self):
        from repro.core import conditions as cond_mod

        cache = cond_mod._SAT_CACHE
        old_limit = cache.limit
        cache.limit = 8
        try:
            hot = Conjunction([Eq(x, 1), Neq(y, 0)])
            hot.is_satisfiable()  # prime
            # Flood with 5x the capacity of one-shot conjunctions, touching
            # the hot entry between insertions so it stays recent.
            for i in range(40):
                Conjunction([Eq(x, i), Neq(y, i + 1), Neq(z, i)]).is_satisfiable()
                assert hot.is_satisfiable()
            assert len(cache) <= 8
            before = condition_cache_stats()
            hot.is_satisfiable()
            after = condition_cache_stats()
            assert after["sat_hits"] == before["sat_hits"] + 1
            assert after["sat_misses"] == before["sat_misses"]
        finally:
            cache.limit = old_limit

    def test_cold_entries_are_evicted_not_everything(self):
        from repro.core import conditions as cond_mod

        cache = cond_mod._SAT_CACHE
        old_limit = cache.limit
        cache.limit = 4
        try:
            cold = Conjunction([Eq(x, 99)])
            cold.is_satisfiable()
            for i in range(10):
                Conjunction([Eq(x, i), Neq(y, i)]).is_satisfiable()
            before = condition_cache_stats()
            cold.is_satisfiable()  # evicted long ago: a fresh miss
            after = condition_cache_stats()
            assert after["sat_misses"] == before["sat_misses"] + 1
            # ...but the cache still holds the newest entries.
            newest = Conjunction([Eq(x, 9), Neq(y, 9)])
            mid = condition_cache_stats()
            newest.is_satisfiable()
            assert condition_cache_stats()["sat_hits"] == mid["sat_hits"] + 1
        finally:
            cache.limit = old_limit

    def test_limit_resize_shrinks_and_zero_never_raises(self):
        from repro.core.conditions import _LRUCache

        cache = _LRUCache(limit=8)
        for i in range(8):
            cache.put(i, i)
        cache.limit = 3
        cache.put("new", 1)  # shrinks past the stale overhang
        assert len(cache) <= 3
        assert cache.get("new") == 1
        cache.limit = 0
        cache.put("again", 2)  # a non-positive limit must not raise
        assert cache.get("again") == 2
