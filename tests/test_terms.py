"""Unit tests for repro.core.terms."""

import pytest

from repro.core.terms import (
    Constant,
    Variable,
    as_constant,
    as_term,
    constants_in,
    fresh_constants,
    fresh_variables,
    is_fact,
    variables_in,
)


class TestConstant:
    def test_equality_by_payload(self):
        assert Constant(3) == Constant(3)
        assert Constant("a") == Constant("a")

    def test_distinct_payloads_differ(self):
        assert Constant(3) != Constant(4)

    def test_payload_type_matters(self):
        assert Constant(3) != Constant("3")

    def test_hashable_and_set_friendly(self):
        assert len({Constant(1), Constant(1), Constant(2)}) == 2

    def test_immutable(self):
        with pytest.raises(AttributeError):
            Constant(1).value = 2

    def test_rejects_term_payload(self):
        with pytest.raises(TypeError):
            Constant(Variable("x"))

    def test_str(self):
        assert str(Constant(7)) == "7"


class TestVariable:
    def test_equality_by_name(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")

    def test_variable_never_equals_constant(self):
        assert Variable("x") != Constant("x")

    def test_requires_nonempty_string(self):
        with pytest.raises(TypeError):
            Variable("")
        with pytest.raises(TypeError):
            Variable(3)

    def test_kind_predicates(self):
        assert Variable("x").is_variable and not Variable("x").is_constant
        assert Constant(1).is_constant and not Constant(1).is_variable


class TestOrdering:
    def test_constants_sort_before_variables(self):
        assert Constant(99).sort_key() < Variable("a").sort_key()

    def test_sort_is_deterministic_across_payload_types(self):
        terms = [Variable("b"), Constant("z"), Constant(1), Variable("a")]
        ordered = sorted(terms, key=lambda t: t.sort_key())
        assert ordered == sorted(terms, key=lambda t: t.sort_key())
        assert ordered[-2:] == [Variable("a"), Variable("b")]


class TestCoercion:
    def test_as_term_passthrough(self):
        x = Variable("x")
        assert as_term(x) is x

    def test_as_term_question_mark_convention(self):
        assert as_term("?x") == Variable("x")

    def test_as_term_plain_values(self):
        assert as_term(5) == Constant(5)
        assert as_term("abc") == Constant("abc")

    def test_as_constant_rejects_variables(self):
        with pytest.raises(TypeError):
            as_constant("?x")


class TestFreshness:
    def test_fresh_variables_avoid_taken(self):
        taken = [Variable("v0"), Variable("v2")]
        stream = fresh_variables("v", avoid=taken)
        first_three = [next(stream) for _ in range(3)]
        assert Variable("v0") not in first_three
        assert Variable("v2") not in first_three
        assert len(set(first_three)) == 3

    def test_fresh_constants_count_and_avoidance(self):
        avoid = [Constant("@c0")]
        out = fresh_constants(3, avoid=avoid)
        assert len(out) == 3
        assert Constant("@c0") not in out
        assert len(set(out)) == 3


class TestCollections:
    def test_variables_and_constants_in(self):
        terms = [Constant(1), Variable("x"), Constant(2), Variable("x")]
        assert variables_in(terms) == {Variable("x")}
        assert constants_in(terms) == {Constant(1), Constant(2)}

    def test_is_fact(self):
        assert is_fact([Constant(1), Constant(2)])
        assert not is_fact([Constant(1), Variable("x")])
        assert is_fact([])
