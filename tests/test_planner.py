"""Differential tests for the join planner and optimized c-table evaluator.

The contract under test (ISSUE 1 / the c-table analogue of classical
plan-equivalence): for every RA expression ``e`` and c-table database ``D``

    rep(evaluate_ct_optimized(e, D)) == rep(evaluate_ct(e, D))

checked through the world-enumeration oracle on hundreds of randomized
(expression, database) pairs plus hand-picked edge cases.  Structural
tests pin down what the rewrite pass is expected to produce.
"""

from __future__ import annotations

import random

import pytest

from repro.core.conditions import Conjunction, Neq
from repro.core.tables import CTable, TableDatabase, c_table
from repro.core.terms import Constant, Variable
from repro.core.worlds import enumerate_worlds, strong_canonicalize
from repro.ctalgebra import evaluate_ct, evaluate_ct_optimized, join_ct, product_ct, select_ct
from repro.relational import (
    ColEq,
    ColEqConst,
    ColNeq,
    Difference,
    Join,
    PlanError,
    Product,
    Project,
    Scan,
    Select,
    Union,
    evaluate_to_relation,
    plan,
    ra_of_ucq,
)
from repro.queries import UCQQuery, atom, cq
from repro.workloads import (
    equijoin_expression,
    random_join_database,
    random_ra_expression,
    random_table,
)

x, y = Variable("x"), Variable("y")


def _rep(table, extra):
    """rep of a single-table database, canonicalised for comparison.

    Strong canonicalisation: the naive and planned evaluators may keep
    different dead rows (hence different variable sets), so worlds must be
    compared up to every |Delta|-fixing renaming, not first-appearance
    renaming.
    """
    worlds = enumerate_worlds(TableDatabase.single(table), extra_constants=extra)
    return {strong_canonicalize(w, extra) for w in worlds}


def assert_same_rep(expression, db):
    naive = evaluate_ct(expression, db, name="V")
    optimized = evaluate_ct_optimized(expression, db, name="V")
    assert naive.arity == optimized.arity
    extra = sorted(db.constants(), key=Constant.sort_key)
    assert _rep(naive, extra) == _rep(optimized, extra), repr(expression)


class TestPlanRewrites:
    """The rewrite pass produces the expected shapes."""

    def test_select_product_fuses_to_join(self):
        expr = Select(Product(Scan("R", 2), Scan("S", 2)), [ColEq(0, 2)])
        planned = plan(expr)
        assert isinstance(planned, Join)
        assert planned.on == ((0, 0),)

    def test_single_side_predicates_push_to_leaves(self):
        expr = Select(
            Product(Scan("R", 2), Scan("S", 2)),
            [ColEq(1, 2), ColEqConst(0, 7), ColEqConst(3, 9)],
        )
        planned = plan(expr)
        assert isinstance(planned, Join)
        assert isinstance(planned.left, Select)
        assert planned.left.predicates == (ColEqConst(0, 7),)
        assert isinstance(planned.right, Select)
        assert planned.right.predicates == (ColEqConst(1, 9),)

    def test_cross_side_inequality_stays_residual(self):
        expr = Select(Product(Scan("R", 1), Scan("S", 1)), [ColNeq(0, 1)])
        planned = plan(expr)
        assert isinstance(planned, Select)
        assert isinstance(planned.child, Join)
        assert planned.child.on == ()

    def test_adjacent_selects_fuse(self):
        expr = Select(Select(Scan("R", 2), [ColEqConst(0, 1)]), [ColEqConst(1, 2)])
        planned = plan(expr)
        assert isinstance(planned, Select)
        assert isinstance(planned.child, Scan)
        assert set(planned.predicates) == {ColEqConst(0, 1), ColEqConst(1, 2)}

    def test_select_pushes_through_project(self):
        expr = Select(Project(Scan("R", 3), [2, 0]), [ColEqConst(0, 5)])
        planned = plan(expr)
        assert isinstance(planned, Project)
        assert isinstance(planned.child, Select)
        assert planned.child.predicates == (ColEqConst(2, 5),)

    def test_select_pushes_left_of_difference_only(self):
        expr = Select(Difference(Scan("R", 1), Scan("S", 1)), [ColEqConst(0, 1)])
        planned = plan(expr)
        assert isinstance(planned, Difference)
        assert isinstance(planned.left, Select)
        assert isinstance(planned.right, Scan)

    def test_bare_product_becomes_join_on_nothing(self):
        planned = plan(Product(Scan("R", 1), Scan("S", 1)))
        assert isinstance(planned, Join)
        assert planned.on == ()

    def test_join_validates_columns(self):
        with pytest.raises(ValueError):
            Join(Scan("R", 2), Scan("S", 2), [(2, 0)])
        with pytest.raises(ValueError):
            Join(Scan("R", 2), Scan("S", 2), [(0, 5)])


class TestJoinCtOperator:
    """join_ct against the select-over-product definition."""

    def _assert_join_matches_product(self, left, right, on):
        db = TableDatabase([left, right])
        preds = [ColEq(l, left.arity + r) for l, r in on]
        reference = select_ct(product_ct(left, right, name="V"), preds, name="V")
        joined = join_ct(left, right, on, name="V")
        extra = sorted(db.constants(), key=Constant.sort_key)
        assert _rep(reference, extra) == _rep(joined, extra)

    def test_ground_rows_hash_partition(self):
        left = CTable("R", 2, [(1, 10), (2, 20), (3, 30)])
        right = CTable("S", 2, [(1, 11), (3, 33), (4, 44)])
        joined = join_ct(left, right, [(0, 0)])
        assert {row.terms[0].value for row in joined.rows} == {1, 3}
        self._assert_join_matches_product(left, right, [(0, 0)])

    def test_variable_join_columns_fall_back(self):
        left = CTable("R", 2, [(x, 10), (2, 20)])
        right = CTable("S", 2, [(1, 11), (y, 22)])
        self._assert_join_matches_product(left, right, [(0, 0)])

    def test_all_variable_join_columns(self):
        left = CTable("R", 1, [(x,)])
        right = CTable("S", 1, [(y,)])
        joined = join_ct(left, right, [(0, 0)])
        assert len(joined.rows) == 1
        self._assert_join_matches_product(left, right, [(0, 0)])

    def test_empty_left_table(self):
        left = CTable("R", 2, [])
        right = CTable("S", 2, [(1, 2)])
        assert len(join_ct(left, right, [(0, 0)]).rows) == 0

    def test_empty_right_table(self):
        left = CTable("R", 2, [(1, 2)])
        right = CTable("S", 2, [])
        assert len(join_ct(left, right, [(0, 0)]).rows) == 0

    def test_multi_column_join(self):
        left = CTable("R", 2, [(1, 2), (1, 3)])
        right = CTable("S", 2, [(1, 2), (1, 9)])
        joined = join_ct(left, right, [(0, 0), (1, 1)])
        assert len(joined.rows) == 1
        self._assert_join_matches_product(left, right, [(0, 0), (1, 1)])

    def test_dead_rows_pruned(self):
        dead = c_table("R", 1, [((1,), "x != x")])
        live = CTable("S", 1, [(1,)])
        assert len(join_ct(dead, live, [(0, 0)]).rows) == 0

    def test_local_conditions_conjoined(self):
        left = c_table("R", 1, [((1,), "x = 0")])
        right = c_table("S", 1, [((1,), "y != 1")])
        self._assert_join_matches_product(left, right, [(0, 0)])

    def test_global_conditions_conjoined(self):
        left = CTable("R", 1, [(x,)], Conjunction([Neq(x, 0)]))
        right = CTable("S", 1, [(y,)], Conjunction([Neq(y, 1)]))
        joined = join_ct(left, right, [(0, 0)])
        assert joined.global_condition == Conjunction([Neq(x, 0), Neq(y, 1)])


class TestDifferentialEdgeCases:
    def test_empty_tables(self):
        db = TableDatabase([CTable("R", 2, []), CTable("S", 2, [(1, 2)])])
        assert_same_rep(equijoin_expression(), db)

    def test_all_variable_join_columns(self):
        db = TableDatabase(
            [CTable("R", 2, [(x, 1)]), CTable("S", 2, [(y, 2)])]
        )
        assert_same_rep(equijoin_expression(), db)

    def test_trivially_false_global_condition(self):
        unsat = Conjunction([Neq(x, x)])
        db = TableDatabase(
            [CTable("R", 2, [(1, 2)], unsat), CTable("S", 2, [(1, 3)])]
        )
        naive = evaluate_ct(equijoin_expression(), db)
        optimized = evaluate_ct_optimized(equijoin_expression(), db)
        extra = sorted(db.constants(), key=Constant.sort_key)
        assert _rep(naive, extra) == _rep(optimized, extra) == set()

    def test_difference_of_joins(self):
        db = TableDatabase(
            [CTable("R", 2, [(1, x), (2, 3)]), CTable("S", 2, [(1, 4), (y, 3)])]
        )
        join = Project(equijoin_expression(), [0, 1])
        assert_same_rep(Difference(join, Scan("R", 2)), db)

    def test_union_of_join_and_scan(self):
        db = TableDatabase(
            [CTable("R", 2, [(1, x)]), CTable("S", 2, [(x, 2)])]
        )
        join = Project(equijoin_expression(), [1, 2])
        assert_same_rep(Union(join, Scan("S", 2)), db)


class TestDifferentialRandomized:
    """The bulk differential sweep: >= 200 randomized cases in total."""

    def test_random_expressions_over_random_tables(self):
        # 40 seeds x 3 table kinds = 120 cases of arbitrary expression shape.
        for seed in range(40):
            rng = random.Random(seed)
            for kind in ("codd", "e", "c"):
                kwargs = {} if kind == "codd" else {"num_variables": 2}
                db = TableDatabase(
                    [
                        random_table(rng, kind, name="R", rows=2, num_constants=2, **kwargs),
                        random_table(rng, kind, name="S", rows=2, num_constants=2, **kwargs),
                    ]
                )
                expr = random_ra_expression(rng, {"R": 2, "S": 2}, depth=2)
                assert_same_rep(expr, db)

    def test_random_join_workloads(self):
        # 60 seeds x (plain + wild/conditioned) = 120 equijoin cases.
        expr = equijoin_expression()
        for seed in range(60):
            rng = random.Random(1000 + seed)
            plain = random_join_database(rng, rows_per_side=3, num_keys=2)
            assert_same_rep(expr, plain)
            wild = random_join_database(
                rng,
                rows_per_side=2,
                num_keys=2,
                var_probability=0.4,
                local_probability=0.4,
                num_variables=2,
            )
            assert_same_rep(expr, wild)

    def test_instance_level_join_matches_desugaring(self):
        # The relational evaluator's hash join vs its select-over-product.
        for seed in range(20):
            rng = random.Random(seed)
            db = random_join_database(rng, rows_per_side=4, var_probability=0.0)
            world = next(iter(enumerate_worlds(db)))
            join = Join(Scan("R", 2), Scan("S", 2), [(0, 0)])
            assert evaluate_to_relation(join, world) == evaluate_to_relation(
                join.as_select_product(), world
            )


class TestUCQCompilation:
    def test_chain_query_plans_to_join(self):
        query = UCQQuery([cq(atom("Q", "X", "Z"), atom("R", "X", "Y"), atom("R", "Y", "Z"))])
        planned = plan(ra_of_ucq(query))
        assert isinstance(planned, Project)
        assert isinstance(planned.child, Join)
        assert planned.child.on == ((1, 0),)

    def test_compiled_query_matches_apply_ucq_semantics(self):
        from repro.ctalgebra import apply_ucq

        db = TableDatabase.single(CTable("R", 2, [(1, x), (y, 2), (2, 3)]))
        query = UCQQuery([cq(atom("Q", "X", "Z"), atom("R", "X", "Y"), atom("R", "Y", "Z"))])
        folded = apply_ucq(query, db)["Q"]
        compiled = evaluate_ct_optimized(ra_of_ucq(query), db, name="Q")
        extra = sorted(db.constants(), key=Constant.sort_key)
        assert _rep(folded, extra) == _rep(compiled, extra)

    def test_unsafe_head_variable_rejected(self):
        # UCQQuery itself enforces range restriction at construction; the
        # compiler never sees unsafe heads (PlanError covers constants).
        with pytest.raises(ValueError):
            UCQQuery([cq(atom("Q", "X", "W"), atom("R", "X", "Y"))])

    def test_head_constant_rejected(self):
        query = UCQQuery([cq(atom("Q", 1), atom("R", "X", "Y"))])
        with pytest.raises(PlanError):
            ra_of_ucq(query)
