"""Tests for the solver substrates (matching, SAT, coloring, graphs)."""

import itertools
import random

import pytest

from repro.solvers import (
    CNF,
    DNF,
    ForallExistsCNF,
    Graph,
    complete_graph,
    cycle_graph,
    dpll_satisfiable,
    example_formula_fig5,
    example_graph_fig4a,
    find_coloring,
    forall_exists_holds,
    has_perfect_left_matching,
    hopcroft_karp,
    is_colorable,
    is_tautology_dnf,
    maximum_matching_size,
    random_cnf,
    random_dnf,
    random_graph,
)


class TestMatching:
    def test_perfect_matching(self):
        adj = {0: ["a", "b"], 1: ["a"], 2: ["c"]}
        matching = hopcroft_karp([0, 1, 2], adj)
        assert len(matching) == 3
        assert matching[1] == "a" and matching[0] == "b"

    def test_deficient_graph(self):
        adj = {0: ["a"], 1: ["a"]}
        assert maximum_matching_size([0, 1], adj) == 1
        assert not has_perfect_left_matching([0, 1], adj)

    def test_empty(self):
        assert hopcroft_karp([], {}) == {}
        assert has_perfect_left_matching([], {})

    def test_isolated_left_node(self):
        assert not has_perfect_left_matching([0], {0: []})

    def test_agrees_with_bruteforce(self, rng):
        for _ in range(25):
            n_left, n_right = rng.randint(1, 5), rng.randint(1, 5)
            adj = {
                i: [j for j in range(n_right) if rng.random() < 0.4]
                for i in range(n_left)
            }
            got = maximum_matching_size(list(range(n_left)), adj)
            best = 0
            for rights in itertools.permutations(range(n_right), min(n_left, n_right)):
                for lefts in itertools.permutations(range(n_left), len(rights)):
                    size = sum(1 for l, r in zip(lefts, rights) if r in adj[l])
                    best = max(best, size)
            # Brute force over injections counts matchable pairs greedily;
            # recompute properly: maximum over all injective maps.
            assert got <= min(n_left, n_right)
            assert got >= 0
            # Exact check via brute force on subsets:
            exact = _brute_matching(adj, n_left, n_right)
            assert got == exact


def _brute_matching(adj, n_left, n_right):
    best = 0
    lefts = list(range(n_left))
    for size in range(min(n_left, n_right), -1, -1):
        for chosen in itertools.combinations(lefts, size):
            for assignment in itertools.permutations(range(n_right), size):
                if all(r in adj[l] for l, r in zip(chosen, assignment)):
                    return size
    return best


class TestDPLL:
    def test_simple_sat(self):
        cnf = CNF([(1, 2), (-1, 2)])
        model = dpll_satisfiable(cnf)
        assert model is not None and cnf.satisfied_by(model)

    def test_simple_unsat(self):
        cnf = CNF([(1,), (-1,)])
        assert dpll_satisfiable(cnf) is None

    def test_partial_assignment_respected(self):
        cnf = CNF([(1, 2)])
        model = dpll_satisfiable(cnf, {1: False})
        assert model is not None and model[2] is True

    def test_model_is_total(self):
        cnf = CNF([(1,)], num_variables=3)
        model = dpll_satisfiable(cnf)
        assert set(model) == {1, 2, 3}

    def test_agrees_with_bruteforce(self, rng):
        for _ in range(30):
            cnf = random_cnf(4, rng.randint(1, 8), rng)
            got = dpll_satisfiable(cnf) is not None
            brute = any(
                cnf.satisfied_by(dict(zip(range(1, 5), bits)))
                for bits in itertools.product([False, True], repeat=4)
            )
            assert got == brute, cnf.clauses

    def test_literal_zero_rejected(self):
        with pytest.raises(ValueError):
            CNF([(0, 1)])


class TestTautology:
    def test_excluded_middle(self):
        assert is_tautology_dnf(DNF([(1,), (-1,)]))

    def test_fig5_not_tautology(self):
        _, dnf, _ = example_formula_fig5()
        assert not is_tautology_dnf(dnf)

    def test_agrees_with_bruteforce(self, rng):
        for _ in range(30):
            dnf = random_dnf(4, rng.randint(1, 8), rng)
            got = is_tautology_dnf(dnf)
            brute = all(
                dnf.satisfied_by(dict(zip(range(1, 5), bits)))
                for bits in itertools.product([False, True], repeat=4)
            )
            assert got == brute, dnf.clauses


class TestForallExists:
    def test_fig5_instance(self):
        _, _, fe = example_formula_fig5()
        assert forall_exists_holds(fe)

    def test_trivially_false(self):
        fe = ForallExistsCNF(CNF([(1,)], num_variables=1), universal=(1,))
        assert not forall_exists_holds(fe)

    def test_exists_compensates(self):
        # forall x1 exists x2: (x1 | x2) & (-x1 | -x2).
        fe = ForallExistsCNF(CNF([(1, 2), (-1, -2)]), universal=(1,))
        assert forall_exists_holds(fe)

    def test_agrees_with_bruteforce(self, rng):
        for _ in range(15):
            cnf = random_cnf(4, rng.randint(1, 6), rng)
            fe = ForallExistsCNF(cnf, universal=(1, 2))
            got = forall_exists_holds(fe)
            brute = all(
                any(
                    cnf.satisfied_by({1: u1, 2: u2, 3: e1, 4: e2})
                    for e1 in (False, True)
                    for e2 in (False, True)
                )
                for u1 in (False, True)
                for u2 in (False, True)
            )
            assert got == brute, cnf.clauses


class TestColoring:
    def test_triangle_needs_three(self):
        g = complete_graph(3)
        assert not is_colorable(g, 2)
        coloring = find_coloring(g, 3)
        assert coloring is not None
        assert len(set(coloring.values())) == 3

    def test_k4_not_three_colorable(self):
        assert not is_colorable(complete_graph(4), 3)
        assert is_colorable(complete_graph(4), 4)

    def test_even_cycle_two_colorable(self):
        assert is_colorable(cycle_graph(6), 2)
        assert not is_colorable(cycle_graph(7), 2)
        assert is_colorable(cycle_graph(7), 3)

    def test_coloring_is_proper(self, rng):
        for _ in range(10):
            g = random_graph(6, 0.4, rng)
            coloring = find_coloring(g, 3)
            if coloring is not None:
                assert all(coloring[a] != coloring[b] for a, b in g.edges)

    def test_empty_graph(self):
        g = Graph([1, 2], [])
        assert is_colorable(g, 1)


class TestGraphs:
    def test_fig4a(self):
        g = example_graph_fig4a()
        assert len(g.nodes) == 5 and len(g.edges) == 5
        assert g.neighbours(3) == {2, 4, 5}
        assert g.degree(5) == 1

    def test_self_loops_rejected(self):
        with pytest.raises(ValueError):
            Graph([1], [(1, 1)])

    def test_unknown_node_rejected(self):
        with pytest.raises(ValueError):
            Graph([1], [(1, 2)])

    def test_duplicate_edges_collapsed(self):
        g = Graph([1, 2], [(1, 2), (2, 1)])
        assert len(g.edges) == 1

    def test_equality_ignores_orientation(self):
        assert Graph([1, 2], [(1, 2)]) == Graph([2, 1], [(2, 1)])
