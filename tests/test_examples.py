"""Smoke test: every documented example runs green.

The modules in ``examples/`` double as executable documentation — each
declares its scenario and expected output in its module docstring and is
referenced from ``README.md``.  This test runs each one as a subprocess
(the way a reader would) and asserts it exits 0 and produces output, so
documentation drift shows up as a test failure, not a confused reader.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def subprocess_env() -> dict[str, str]:
    """The environment for running repo code as a subprocess: the current
    environment with ``src/`` prepended to ``PYTHONPATH``.  Shared with
    ``tests/test_docs.py``."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def test_examples_directory_is_populated():
    assert EXAMPLES, f"no examples found under {EXAMPLES_DIR}"


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_green(example: Path):
    env = subprocess_env()
    result = subprocess.run(
        [sys.executable, str(example)],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
        cwd=str(REPO_ROOT),
    )
    assert result.returncode == 0, (
        f"{example.name} exited {result.returncode}\n"
        f"stdout:\n{result.stdout[-2000:]}\nstderr:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{example.name} printed nothing"


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.stem)
def test_example_docstring_documents_itself(example: Path):
    """Each example states what it shows, how to run it, and what to expect."""
    module_text = example.read_text(encoding="utf-8")
    assert module_text.lstrip().startswith('"""'), f"{example.name}: no docstring"
    docstring = module_text.split('"""')[1]
    assert f"python examples/{example.name}" in docstring, (
        f"{example.name}: docstring lacks a run command"
    )
    assert "Expected output" in docstring, (
        f"{example.name}: docstring lacks an expected-output statement"
    )
