"""Materialized views: differential maintenance harness + unit tests.

The contract (ISSUE 5): for every registered view ``V = e(D)`` and every
update sequence applied through :mod:`repro.extensions.updates` with the
:class:`~repro.views.ViewManager` attached, the *incrementally
maintained* materialization ``rep``-equals a full re-evaluation of ``e``
over the updated database.  The maintained rows may differ
syntactically (delta rules re-emit rows instead of growing match
disjunctions; the pin-aware hash join drops semantically-dead pairs the
naive path keeps), so worlds are compared after ``strong_canonicalize``
— the randomized harness below holds the two to identical canonical
world sets across 100+ randomized update sequences, including
condition-bearing (variable/wild) deltas, difference-fallback paths and
targeted delete recomputation.

Unit tests pin the maintenance mechanics: delta vs recompute paths,
dependency tracking, subplan sharing across views, the pinned-variable
hash partitioning in ``join_ct``, the updates-module notification audit
(StatsStore invalidation + view notification on every mutation path,
including failure atomicity), the ``update_stream`` generator, and the
``repro view`` / ``repro eval --use-views`` CLI surface.
"""

from __future__ import annotations

import random

import pytest

from repro.core.tables import CTable, Row, TableDatabase, c_table, codd_table
from repro.core.terms import Constant, Variable
from repro.core.worlds import enumerate_worlds, strong_canonicalize
from repro.ctalgebra import evaluate_ct
from repro.ctalgebra.operators import JoinPartition, _join_partition, join_ct
from repro.extensions import (
    apply_update,
    delete_fact,
    insert_fact,
    maybe_database,
    maybe_table,
    modify_fact,
)
from repro.relational import (
    ColEq,
    ColEqConst,
    Difference,
    Join,
    Product,
    Project,
    Scan,
    Select,
    StatsStore,
    Union,
    plan_fingerprint,
)
from repro.views import ViewError, ViewManager
from repro.workloads import (
    random_nway_join_database,
    random_ra_expression,
    star_join_database,
    star_join_expression,
    update_stream,
)


def _rep(table, extra):
    worlds = enumerate_worlds(TableDatabase.single(table), extra_constants=extra)
    return {strong_canonicalize(w, extra) for w in worlds}


def assert_view_matches(manager, name, expr, db):
    """The maintained materialization rep-equals full re-evaluation."""
    maintained = manager.get(name)
    reference = evaluate_ct(expr, db, name=name)
    assert maintained.arity == reference.arity
    extra = sorted(
        db.constants() | maintained.constants() | reference.constants(),
        key=Constant.sort_key,
    )
    assert _rep(maintained, extra) == _rep(reference, extra)


# ---------------------------------------------------------------------------
# The randomized differential harness
# ---------------------------------------------------------------------------

#: 105 sequences of randomized updates over condition-bearing databases
#: (each checked after *every* update), plus the ground star cases below.
RANDOM_CASES = list(range(105))


class TestRandomizedMaintenance:
    @pytest.mark.parametrize("seed", RANDOM_CASES)
    def test_random_expression_random_stream(self, seed):
        rng = random.Random(0x51EE + seed)
        db = random_nway_join_database(
            rng,
            3,
            rows_per_table=2,
            var_probability=0.3,
            local_probability=0.3,
            num_variables=2,
        )
        relations = {t.name: t.arity for t in db.tables()}
        expr = random_ra_expression(rng, relations, depth=2, allow_difference=True)
        manager = ViewManager(db)
        manager.define("V", expr)
        assert_view_matches(manager, "V", expr, db)
        for op in update_stream(rng, db, 3, fresh_probability=0.1):
            db = apply_update(db, op, views=manager)
            assert_view_matches(manager, "V", expr, db)

    @pytest.mark.parametrize("seed", range(12))
    def test_star_view_long_stream(self, seed):
        # The benchmark's shape, small: ground data, longer mixed streams.
        # Everything stays ground, so maintained rows must literally equal
        # the re-evaluated rows (the rep comparison's degenerate case).
        rng = random.Random(0xA11 + seed)
        db = star_join_database(rng, num_dims=3, dim_rows=4, fact_rows=12)
        expr = star_join_expression(3)
        manager = ViewManager(db)
        manager.define("V", expr)
        for op in update_stream(rng, db, 10):
            db = apply_update(db, op, views=manager)
            assert set(manager.get("V").rows) == set(
                evaluate_ct(expr, db, name="V").rows
            )

    def test_condition_bearing_deltas(self):
        # Inserts joining against variable/wild rows produce delta rows
        # carrying conditions; deletes unifying with null rows rewrite
        # conditions and must take the targeted-recompute path.
        db = TableDatabase(
            [
                c_table("R", 2, [((0, "?x"), "x != 9"), (("?y", 1),)]),
                codd_table("S", 2, [(1, 5), ("?z", 6)]),
            ]
        )
        expr = Select(Product(Scan("R", 2), Scan("S", 2)), [ColEq(1, 2)])
        manager = ViewManager(db)
        manager.define("V", expr)
        db = insert_fact(db, "S", (2, 7), views=manager)
        assert manager.counters["delta_rows"] > 0
        assert_view_matches(manager, "V", expr, db)
        db = delete_fact(db, "R", (0, 1), views=manager)  # unifies with nulls
        assert manager.counters["recomputed_nodes"] > 0
        assert_view_matches(manager, "V", expr, db)
        db = modify_fact(db, "S", (1, 5), (1, 8), views=manager)
        assert_view_matches(manager, "V", expr, db)


# ---------------------------------------------------------------------------
# Maintenance mechanics
# ---------------------------------------------------------------------------


def _star(seed=7, num_dims=3, dim_rows=5, fact_rows=20):
    rng = random.Random(seed)
    db = star_join_database(rng, num_dims=num_dims, dim_rows=dim_rows, fact_rows=fact_rows)
    return db, star_join_expression(num_dims)


class TestViewManagerBasics:
    def test_define_materializes(self):
        db, expr = _star()
        manager = ViewManager(db)
        table = manager.define("V", expr)
        assert table.name == "V"
        assert set(table.rows) == set(evaluate_ct(expr, db, name="V").rows)
        assert "V" in manager and manager.names() == ("V",)
        assert manager.relations("V") == {"F", "D0", "D1", "D2"}
        assert manager.readers("F") == ("V",)
        assert manager.readers("Zed") == ()

    def test_define_from_rule_text(self):
        db = TableDatabase(
            [codd_table("R", 2, [(0, 1), (1, 2)]), codd_table("S", 2, [(1, 5)])]
        )
        manager = ViewManager(db)
        table = manager.define("V", "V(Y) :- R(X, Y), S(X, Z).")
        assert table.arity == 1
        assert manager.relations("V") == {"R", "S"}

    def test_duplicate_define_rejected(self):
        db, expr = _star()
        manager = ViewManager(db)
        manager.define("V", expr)
        with pytest.raises(ViewError, match="already defined"):
            manager.define("V", expr)

    def test_bad_query_rejected(self):
        db, _ = _star()
        with pytest.raises(ViewError, match="cannot compile"):
            ViewManager(db).define("V", "not a rule")

    def test_drop_and_unknown(self):
        db, expr = _star()
        manager = ViewManager(db)
        manager.define("V", expr)
        manager.drop("V")
        assert len(manager) == 0
        assert manager._nodes == {}  # subplan caches released
        with pytest.raises(ViewError, match="no view"):
            manager.drop("V")
        with pytest.raises(ViewError, match="no view"):
            manager.get("V")

    def test_lookup_matches_source_expression(self):
        db, expr = _star()
        manager = ViewManager(db)
        manager.define("V", expr)
        hit = manager.lookup(expr)
        assert hit is not None and hit[0] == "V"
        assert set(hit[1].rows) == set(manager.get("V").rows)
        assert manager.lookup(Scan("F", 3)) is None

    def test_failed_define_leaves_no_orphan_subplans(self):
        # A define that fails mid-materialization (arity mismatch) must
        # not leave freshly-interned, partially-cached nodes behind: no
        # view owns them, so notifications would skip them and a later
        # define sharing a fingerprint would reuse the stale cache.
        db = TableDatabase.single(codd_table("R", 2, [(0, 1)]))
        manager = ViewManager(db)
        with pytest.raises(ValueError, match="arity"):
            manager.define("V1", Join(Scan("R", 2), Scan("R", 3), ()))
        assert manager.subplan_count == 0
        db = insert_fact(db, "R", (5, 6), views=manager)  # no dependents yet
        table = manager.define("V2", Project(Scan("R", 2), [0, 1]))
        assert set(table.rows) == set(db["R"].rows)

    def test_modify_log_keeps_both_halves(self):
        db, expr = _star()
        manager = ViewManager(db)
        manager.define("V", expr)
        db = modify_fact(db, "F", tuple(db["F"].rows[0].terms), (0, 0, 0), views=manager)
        joined = "\n".join(manager.last_maintenance)
        assert "delete from F" in joined and "insert into F" in joined

    def test_refresh_rebinds_a_replaced_database(self):
        db, expr = _star()
        manager = ViewManager(db)
        manager.define("V", expr)
        replaced = insert_fact(db, "F", (0, 0, 0))  # manager NOT notified
        manager.refresh(db=replaced)
        assert set(manager.get("V").rows) == set(
            evaluate_ct(expr, replaced, name="V").rows
        )

    def test_refresh_rejects_single_view_against_a_new_database(self):
        # Rebinding the database while refreshing only one view would
        # leave every other view permanently inconsistent.
        db, expr = _star()
        manager = ViewManager(db)
        manager.define("V", expr)
        replaced = insert_fact(db, "F", (0, 0, 0))
        with pytest.raises(ViewError, match="stale against the new database"):
            manager.refresh("V", db=replaced)


class TestDeltaVsRecompute:
    def test_insert_takes_the_delta_path(self):
        db, expr = _star()
        manager = ViewManager(db)
        manager.define("V", expr)
        db = insert_fact(db, "F", (1, 1, 1), views=manager)
        assert manager.counters["delta_nodes"] > 0
        assert manager.counters["recomputed_nodes"] == 0
        assert any("delta node" in line for line in manager.last_maintenance)

    def test_idempotent_reinsert_propagates_nothing(self):
        db, expr = _star()
        manager = ViewManager(db)
        manager.define("V", expr)
        db = insert_fact(db, "F", (2, 2, 2), views=manager)
        rows_after_first = dict(manager.counters)["delta_rows"]
        db = insert_fact(db, "F", (2, 2, 2), views=manager)
        assert manager.counters["delta_rows"] == rows_after_first

    def test_ground_delete_takes_the_removal_path(self):
        # Deleting a fact that matches ground rows only removes rows —
        # the removal delta subtracts from caches, no recompute at all.
        db, expr = _star()
        manager = ViewManager(db)
        manager.define("V", expr)
        db = delete_fact(db, "D1", (0, 2000), views=manager)
        assert manager.counters["recomputed_nodes"] == 0
        assert manager.counters["removed_rows"] > 0
        assert set(manager.get("V").rows) == set(
            evaluate_ct(expr, db, name="V").rows
        )

    def test_null_unifying_delete_recomputes_only_the_affected_subtree(self):
        # A delete unifying with a variable row rewrites its condition:
        # the affected subtree recomputes, siblings keep their caches.
        db, expr = _star()
        tables = [
            t if t.name != "D1" else t.with_rows(list(t.rows) + [Row(("?u", 77))])
            for t in db.tables()
        ]
        db = TableDatabase(tables)
        manager = ViewManager(db)
        manager.define("V", expr)
        total_nodes = len(manager._nodes)
        db = delete_fact(db, "D1", (3, 77), views=manager)
        recomputed = manager.counters["recomputed_nodes"]
        assert 0 < recomputed < total_nodes
        assert any("reused" in line for line in manager.last_maintenance)
        assert_view_matches(manager, "V", expr, db)

    def test_noop_delete_recomputes_nothing(self):
        db, expr = _star()
        manager = ViewManager(db)
        manager.define("V", expr)
        db = delete_fact(db, "F", (999, 999, 999), views=manager)
        assert manager.counters["recomputed_nodes"] == 0

    def test_unrelated_update_is_free(self):
        db, expr = _star()
        db = TableDatabase(list(db.tables()) + [codd_table("Z", 1, [(1,)])])
        manager = ViewManager(db)
        manager.define("V", expr)
        db = insert_fact(db, "Z", (2,), views=manager)
        assert manager.counters["skipped_updates"] == 1
        assert manager.counters["delta_nodes"] == 0
        assert manager.counters["recomputed_nodes"] == 0

    def test_difference_right_insert_falls_back(self):
        db = TableDatabase(
            [codd_table("R", 1, [(0,), (1,)]), codd_table("S", 1, [(1,)])]
        )
        expr = Difference(Scan("R", 1), Scan("S", 1))
        manager = ViewManager(db)
        manager.define("V", expr)
        db = insert_fact(db, "S", (0,), views=manager)
        assert manager.counters["difference_fallbacks"] == 1
        assert_view_matches(manager, "V", expr, db)
        # Left-side inserts stay additive.
        db = insert_fact(db, "R", (5,), views=manager)
        assert manager.counters["difference_fallbacks"] == 1
        assert manager.counters["delta_rows"] > 0
        assert_view_matches(manager, "V", expr, db)

    def test_union_and_intersect_deltas(self):
        db = TableDatabase(
            [codd_table("R", 1, [(0,)]), codd_table("S", 1, [(0,), (2,)])]
        )
        union = Union(Scan("R", 1), Scan("S", 1))
        intersect = Project(
            Select(Product(Scan("R", 1), Scan("S", 1)), [ColEq(0, 1)]), [0]
        )
        manager = ViewManager(db)
        manager.define("U", union)
        manager.define("I", intersect)
        for fact, relation in [((2,), "R"), ((7,), "S"), ((7,), "R")]:
            db = insert_fact(db, relation, fact, views=manager)
            assert_view_matches(manager, "U", union, db)
            assert_view_matches(manager, "I", intersect, db)
        assert manager.counters["recomputed_nodes"] == 0


class TestSharedSubplans:
    def test_views_share_join_subtrees(self):
        db = TableDatabase(
            [
                codd_table("R", 2, [(0, 1), (1, 2)]),
                codd_table("S", 2, [(1, 5), (2, 6)]),
            ]
        )
        join = Join(Scan("R", 2), Scan("S", 2), [(1, 0)])
        manager = ViewManager(db)
        manager.define("V1", join)
        manager.define("V2", Project(join, [0, 3]))
        # V2's tree reuses V1's nodes: only the Project root is new.
        fingerprints = set(manager._nodes)
        assert plan_fingerprint(manager._views["V1"].planned) in fingerprints
        assert len(fingerprints) == 4  # scan R, scan S, join, project
        shared = manager._views["V1"].root
        assert shared is manager._views["V2"].root.children[0]

    def test_shared_node_maintained_once_per_update(self):
        db = TableDatabase(
            [
                codd_table("R", 2, [(0, 1), (1, 2)]),
                codd_table("S", 2, [(1, 5), (2, 6)]),
            ]
        )
        join = Join(Scan("R", 2), Scan("S", 2), [(1, 0)])
        manager = ViewManager(db)
        manager.define("V1", join)
        manager.define("V2", Project(join, [0, 3]))
        db = insert_fact(db, "R", (5, 1), views=manager)
        # The shared join and V2's project each count once (scan caches
        # are replaced, not delta-appended); a per-view walk would have
        # counted the join twice.
        assert manager.counters["delta_nodes"] == 2
        assert set(manager.get("V1").rows) == set(
            evaluate_ct(join, db, name="V1").rows
        )
        assert set(manager.get("V2").rows) == set(
            evaluate_ct(Project(join, [0, 3]), db, name="V2").rows
        )


# ---------------------------------------------------------------------------
# ISSUE satellite: updates.py / maybe.py audit — every mutation path
# invalidates the StatsStore and notifies the view manager, atomically.
# ---------------------------------------------------------------------------


class TestUpdateNotificationAudit:
    def _setup(self):
        db = TableDatabase.single(codd_table("R", 2, [(0, 1), (1, 2)]))
        store = StatsStore(db)
        store.snapshot()
        manager = ViewManager(db)
        manager.define("V", Scan("R", 2))
        return db, store, manager

    @pytest.mark.parametrize("op", ["insert", "delete", "modify"])
    def test_every_mutation_invalidates_and_notifies(self, op):
        db, store, manager = self._setup()
        assert "R" in store
        if op == "insert":
            out = insert_fact(db, "R", (7, 7), stats=store, views=manager)
        elif op == "delete":
            out = delete_fact(db, "R", (0, 1), stats=store, views=manager)
        else:
            out = modify_fact(db, "R", (0, 1), (7, 7), stats=store, views=manager)
        assert "R" not in store  # invalidated
        assert store.source is out  # rebound to the updated database
        assert manager.database is out  # manager rebound too
        assert set(manager.get("V").rows) == set(out["R"].rows)

    @pytest.mark.parametrize(
        "bad_call",
        [
            lambda db, s, v: insert_fact(db, "R", (1,), stats=s, views=v),
            lambda db, s, v: delete_fact(db, "R", (1, 2, 3), stats=s, views=v),
            lambda db, s, v: modify_fact(db, "R", (0, 1), (1,), stats=s, views=v),
            lambda db, s, v: modify_fact(db, "X", (0, 1), (1, 1), stats=s, views=v),
        ],
    )
    def test_failed_update_leaves_store_and_views_untouched(self, bad_call):
        db, store, manager = self._setup()
        before = set(manager.get("V").rows)
        with pytest.raises((ValueError, KeyError)):
            bad_call(db, store, manager)
        assert "R" in store  # cache intact
        assert store.source is db  # not rebound
        assert manager.database is db
        assert set(manager.get("V").rows) == before

    def test_maybe_encoded_databases_ride_the_same_contract(self):
        # maybe.py itself has no mutation entry points (encoding builds a
        # fresh c-table database); the audit outcome is that its output
        # flows through the same updates/stats/views contract unchanged.
        db = maybe_database(
            [maybe_table("R", 1, sure=[(0,)], maybe=[(1,), (2,)])]
        )
        store = StatsStore(db)
        manager = ViewManager(db, stats=store)
        expr = Scan("R", 1)
        manager.define("V", expr)
        out = insert_fact(db, "R", (5,), stats=store, views=manager)
        assert_view_matches(manager, "V", expr, out)
        out2 = delete_fact(out, "R", (1,), stats=store, views=manager)
        assert store.source is out2
        assert_view_matches(manager, "V", expr, out2)


# ---------------------------------------------------------------------------
# ISSUE satellite: pinned variables hash in join_ct
# ---------------------------------------------------------------------------


class TestPinnedJoinPartition:
    def test_locally_pinned_key_is_bucketed(self):
        table = c_table(
            "R", 2, [((Variable("p"), 10), "p = 3"), ((4, 11),), (("?w", 12),)]
        )
        buckets, wild, alive = _join_partition(table, [0])
        assert len(alive) == 3
        assert [row.terms[1] for row in wild] == [(Constant(12))]
        assert {key for key in buckets} == {(Constant(3),), (Constant(4),)}

    def test_globally_pinned_key_is_bucketed(self):
        table = c_table("R", 2, [(("?g", 10),)], "g = 5")
        buckets, wild, alive = _join_partition(table, [0])
        assert wild == []
        assert (Constant(5),) in buckets

    def test_domain_pins_stay_wild(self):
        table = c_table("R", 1, [(("?d",), "d = 1 | d = 2")])
        buckets, wild, _ = _join_partition(table, [0])
        assert buckets == {} and len(wild) == 1

    def test_pinned_join_is_rep_equivalent_and_smaller(self):
        left = c_table("L", 2, [((Variable("p"), 0), "p = 1"), ((2, 1),)])
        right = codd_table("R", 2, [(1, 8), (2, 9), (3, 10)])
        hashed = join_ct(left, right, [(0, 0)], name="J")
        naive = evaluate_ct(
            Select(Product(Scan("L", 2), Scan("R", 2)), [ColEq(0, 2)]),
            TableDatabase([left, right]),
            name="J",
        )
        # The hash path drops the contradictory p=1 & p=2 / p=3 pairs.
        assert len(hashed) < len(naive)
        extra = sorted(
            left.constants() | right.constants(), key=Constant.sort_key
        )
        assert _rep(hashed, extra) == _rep(naive, extra)


class TestPersistentJoinPartition:
    """The maintained counterpart of ``_join_partition``: built once,
    synced with add/remove, handed back to ``join_ct``."""

    def sample_table(self):
        return c_table(
            "R", 2, [((Variable("p"), 10), "p = 3"), ((4, 11),), (("?w", 12),)]
        )

    def test_matches_one_shot_partition(self):
        table = self.sample_table()
        buckets, wild, alive = _join_partition(table, [0])
        partition = JoinPartition(table, [0])
        assert partition.buckets.keys() == buckets.keys()
        assert partition.wild == wild
        assert partition.alive == alive

    def test_add_and_remove_keep_classification_in_sync(self):
        table = self.sample_table()
        partition = JoinPartition(table, [0])
        extra = (Row((Constant(4), Constant(13))), Row((Variable("q"), Constant(14))))
        partition.add_rows(extra)
        assert len(partition.alive) == 5
        assert len(partition.buckets[(Constant(4),)]) == 2
        assert len(partition.wild) == 2
        partition.remove_rows(extra)
        reference = JoinPartition(table, [0])
        assert partition.buckets.keys() == reference.buckets.keys()
        assert partition.wild == reference.wild
        assert sorted(partition.alive, key=repr) == sorted(
            reference.alive, key=repr
        )

    def test_removing_the_last_bucket_row_drops_the_bucket(self):
        table = codd_table("R", 2, [(1, 8), (2, 9)])
        partition = JoinPartition(table, [0])
        partition.remove_rows([Row((Constant(1), Constant(8)))])
        assert (Constant(1),) not in partition.buckets
        assert len(partition.alive) == 1

    def test_join_with_supplied_partition_matches_plain_join(self):
        left = self.sample_table()
        right = codd_table("S", 2, [(3, 0), (4, 1), (5, 2)])
        plain = join_ct(left, right, [(0, 0)], name="J")
        partitioned = join_ct(
            left, right, [(0, 0)], name="J",
            left_partition=JoinPartition(left, [0]),
        )
        assert set(partitioned.rows) == set(plain.rows)
        both = join_ct(
            left, right, [(0, 0)], name="J",
            left_partition=JoinPartition(left, [0]),
            right_partition=JoinPartition(right, [0]),
        )
        assert set(both.rows) == set(plain.rows)

    def test_mismatched_partition_columns_are_rejected(self):
        left = self.sample_table()
        right = codd_table("S", 2, [(3, 0)])
        with pytest.raises(ValueError, match="columns"):
            join_ct(
                left, right, [(0, 0)], name="J",
                left_partition=JoinPartition(left, [1]),
            )

    def test_manager_reuses_partitions_across_inserts(self):
        """A stream of fact-side inserts against a star view: the big
        dimension-side partitions are built once and reused, not rebuilt
        per update."""
        db, expr = _star(seed=11, num_dims=2, dim_rows=6, fact_rows=24)
        manager = ViewManager(db)
        manager.define("V", expr)
        assert manager.counters["partition_builds"] == 0
        fresh = [(i % 6, (i + 1) % 6) for i in range(6)]
        for fact in fresh:
            db = insert_fact(db, "F", fact, views=manager)
            assert set(manager.get("V").rows) == set(
                evaluate_ct(expr, db, name="V").rows
            )
        builds = manager.counters["partition_builds"]
        reuses = manager.counters["partition_reuses"]
        assert builds > 0
        assert reuses > builds, (builds, reuses)
        # More inserts: reuse keeps growing, builds stay flat.
        for fact in [(i % 6, (i + 2) % 6) for i in range(6)]:
            db = insert_fact(db, "F", fact, views=manager)
        assert manager.counters["partition_builds"] == builds
        assert manager.counters["partition_reuses"] > reuses

    def test_manager_partitions_survive_deletes(self):
        db, expr = _star(seed=13, num_dims=2, dim_rows=5, fact_rows=20)
        manager = ViewManager(db)
        manager.define("V", expr)
        facts = [tuple(t.value for t in row.terms) for row in db["F"].rows]
        for fact in facts[:4]:
            db = delete_fact(db, "F", fact, views=manager)
            assert set(manager.get("V").rows) == set(
                evaluate_ct(expr, db, name="V").rows
            )
        for fact in [(i % 5, (i + 3) % 5) for i in range(3)]:
            db = insert_fact(db, "F", fact, views=manager)
            assert set(manager.get("V").rows) == set(
                evaluate_ct(expr, db, name="V").rows
            )


# ---------------------------------------------------------------------------
# ISSUE satellite: the update_stream generator
# ---------------------------------------------------------------------------


class TestUpdateStream:
    def test_reproducible(self):
        db, _ = _star()
        first = update_stream(random.Random(5), db, 30)
        second = update_stream(random.Random(5), db, 30)
        assert first == second

    def test_shapes_and_weights(self):
        db, _ = _star()
        ops = update_stream(
            random.Random(5), db, 200, insert_weight=1, delete_weight=1, modify_weight=0
        )
        kinds = {op[0] for op in ops}
        assert kinds <= {"insert", "delete"}
        inserts = sum(1 for op in ops if op[0] == "insert")
        assert 60 <= inserts <= 140  # ~half, with slack for the fallback

    def test_relations_filter_and_applicability(self):
        db, _ = _star()
        ops = update_stream(random.Random(6), db, 25, relations=["F", "D0"])
        assert {op[1] for op in ops} <= {"F", "D0"}
        for op in ops:
            db = apply_update(db, op)  # arities all line up

    def test_deletes_mostly_hit_existing_facts(self):
        db, _ = _star(fact_rows=40)
        ops = update_stream(
            random.Random(7), db, 120, insert_weight=0.2, delete_weight=0.8,
            modify_weight=0.0,
        )
        current = db
        hits = misses = 0
        for op in ops:
            if op[0] == "delete":
                before = current[op[1]].rows
                current = apply_update(current, op)
                if current[op[1]].rows != before:
                    hits += 1
                else:
                    misses += 1
            else:
                current = apply_update(current, op)
        assert hits > misses

    def test_bad_arguments(self):
        db, _ = _star()
        with pytest.raises(ValueError, match="at least one relation"):
            update_stream(random.Random(0), db, 5, relations=[])
        with pytest.raises(ValueError, match="positive weight"):
            update_stream(
                random.Random(0), db, 5,
                insert_weight=0, delete_weight=0, modify_weight=0,
            )


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------


class TestPlanFingerprint:
    def test_predicate_order_is_canonical(self):
        a = Select(Scan("R", 2), [ColEq(0, 1), ColEqConst(0, 3)])
        b = Select(Scan("R", 2), [ColEqConst(0, 3), ColEq(0, 1)])
        assert plan_fingerprint(a) == plan_fingerprint(b)

    def test_distinct_expressions_differ(self):
        assert plan_fingerprint(Scan("R", 2)) != plan_fingerprint(Scan("R", 3))
        assert plan_fingerprint(
            Union(Scan("R", 1), Scan("S", 1))
        ) != plan_fingerprint(Union(Scan("S", 1), Scan("R", 1)))
        assert plan_fingerprint(
            Select(Scan("R", 2), [ColEqConst(0, 1)])
        ) != plan_fingerprint(Select(Scan("R", 2), [ColEqConst(0, "1")]))


# ---------------------------------------------------------------------------
# The CLI surface
# ---------------------------------------------------------------------------


@pytest.fixture
def view_db_file(tmp_path):
    from repro.io import dumps_database

    db = TableDatabase(
        [
            codd_table("R", 2, [(0, 1), (0, 2), (1, 3)]),
            codd_table("S", 2, [(0, 5), (1, 6)]),
        ]
    )
    path = tmp_path / "db.pwt"
    path.write_text(dumps_database(db))
    return str(path)


QUERY = "V(Y) :- R(X, Y), S(X, Z)."


class TestViewCli:
    def _main(self, *argv):
        from repro.cli import main

        return main(list(argv))

    def test_define_list_eval_drop_roundtrip(self, view_db_file, capsys):
        assert self._main("view", "define", view_db_file, QUERY) == 0
        assert "defined view V/1" in capsys.readouterr().out
        assert self._main("view", "list", view_db_file) == 0
        assert "fresh" in capsys.readouterr().out
        assert self._main("eval", view_db_file, QUERY, "--use-views", "--explain") == 0
        out = capsys.readouterr().out
        assert "answered by materialized view 'V'" in out
        assert "V/1" in out
        assert self._main("view", "drop", view_db_file, "V") == 0
        capsys.readouterr()
        assert self._main("eval", view_db_file, QUERY, "--use-views", "--explain") == 0
        assert "no views registered" in capsys.readouterr().out

    def test_stale_view_is_not_used_until_refreshed(self, view_db_file, capsys):
        assert self._main("view", "define", view_db_file, QUERY) == 0
        with open(view_db_file, "a", encoding="utf-8") as fp:
            fp.write("9 9\n")  # appended to the last table: S
        capsys.readouterr()
        assert self._main("eval", view_db_file, QUERY, "--use-views", "--explain") == 0
        assert "stale" in capsys.readouterr().out
        assert self._main("view", "list", view_db_file) == 0
        assert "stale" in capsys.readouterr().out
        assert self._main("view", "refresh", view_db_file) == 0
        assert "refreshed view V" in capsys.readouterr().out
        assert self._main("eval", view_db_file, QUERY, "--use-views", "--explain") == 0
        assert "answered by materialized view" in capsys.readouterr().out

    def test_view_answer_matches_direct_evaluation(self, view_db_file, capsys):
        assert self._main("eval", view_db_file, QUERY) == 0
        direct = capsys.readouterr().out.splitlines()[-3:]
        assert self._main("view", "define", view_db_file, QUERY) == 0
        capsys.readouterr()
        assert self._main("eval", view_db_file, QUERY, "--use-views") == 0
        via_view = capsys.readouterr().out.splitlines()[-3:]
        assert sorted(direct) == sorted(via_view)

    def test_duplicate_define_and_missing_drop(self, view_db_file, capsys):
        assert self._main("view", "define", view_db_file, QUERY) == 0
        assert self._main("view", "define", view_db_file, QUERY) == 2
        assert "already defined" in capsys.readouterr().err
        assert self._main("view", "drop", view_db_file, "W") == 1

    def test_bad_queries_are_clean_cli_errors(self, view_db_file, capsys):
        # Parse errors, unknown relations and arity mismatches must all
        # exit 2 with a `repro: view:` message, never a traceback.
        for query in (
            "V(X :- R(X, Y.",  # unparsable
            "V(X) :- Zed(X, Y).",  # unknown relation
            "V(X) :- R(X, Y, Z).",  # arity mismatch
        ):
            assert self._main("view", "define", view_db_file, query) == 2
            err = capsys.readouterr().err
            assert "repro: view:" in err

    def test_refresh_with_nothing_registered(self, view_db_file, capsys):
        assert self._main("view", "refresh", view_db_file) == 0
        assert "no views registered" in capsys.readouterr().out
        assert self._main("view", "list", view_db_file) == 0
        assert "no views registered" in capsys.readouterr().out

    def test_refresh_unknown_name(self, view_db_file, capsys):
        assert self._main("view", "define", view_db_file, QUERY) == 0
        assert self._main("view", "refresh", view_db_file, "W") == 1
